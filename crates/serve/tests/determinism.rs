//! Multi-stream determinism suite (PR 10 satellite): S streams interleaved
//! through the sharded service must produce per-stream `CvOptimum`
//! sequences **bit-identical** to sequential single-stream replay.
//!
//! The sequential oracle is [`GlobalLockService`] — a plain stream map
//! driven synchronously, which by construction is exactly "driving that
//! stream's `SlidingWindowSelector` sequentially" (it calls `push` per
//! arrival and shares the service's close semantics). With conflation off
//! the sharded service must match it *operation for operation*: same fired
//! optima in order, same final optimum, same counters. With conflation on,
//! intermediate firings may merge but the close-time optimum — computed
//! over the identical surviving window — must still match bit-for-bit.
//!
//! A proptest then interleaves arrivals with stream create/close (plus
//! non-finite arrivals and requests to unopened streams) and asserts the
//! same service/oracle agreement on every close.

use proptest::prelude::*;

use kcv_core::grid::BandwidthGrid;
use kcv_core::kernels::Epanechnikov;
use kcv_core::util::SplitMix64;
use kcv_serve::{BandwidthService, GlobalLockService, ServeConfig, StreamId, StreamOutcome};

fn grid(k: usize) -> BandwidthGrid {
    BandwidthGrid::log(0.01, 0.5, k).unwrap()
}

fn paper_arrival(rng: &mut SplitMix64) -> (f64, f64) {
    let x = rng.next_f64();
    let y = 0.5 * x + 10.0 * x * x + 0.5 * rng.next_f64();
    (x, y)
}

/// Bit-level equality of two outcomes (PartialEq plus explicit bandwidth
/// bit comparison, so a `0.1 + 0.2`-style drift cannot hide behind an
/// approximate float compare).
fn assert_outcomes_bit_identical(served: &StreamOutcome, oracle: &StreamOutcome, ctx: &str) {
    assert_eq!(served.arrivals, oracle.arrivals, "{ctx}: arrivals");
    assert_eq!(served.rejected, oracle.rejected, "{ctx}: rejected");
    assert_eq!(served.reselects, oracle.reselects, "{ctx}: reselects");
    assert_eq!(served.optima.len(), oracle.optima.len(), "{ctx}: fired count");
    for (i, (s, o)) in served.optima.iter().zip(&oracle.optima).enumerate() {
        assert_eq!(s.index, o.index, "{ctx}: optimum {i} index");
        assert_eq!(
            s.bandwidth.to_bits(),
            o.bandwidth.to_bits(),
            "{ctx}: optimum {i} bandwidth not bit-identical"
        );
        assert_eq!(s.score.to_bits(), o.score.to_bits(), "{ctx}: optimum {i} score");
        assert_eq!(s.included, o.included, "{ctx}: optimum {i} included");
    }
    match (&served.final_optimum, &oracle.final_optimum) {
        (Some(s), Some(o)) => {
            assert_eq!(
                s.bandwidth.to_bits(),
                o.bandwidth.to_bits(),
                "{ctx}: final bandwidth not bit-identical"
            );
            assert_eq!(s.index, o.index, "{ctx}: final index");
            assert_eq!(s.included, o.included, "{ctx}: final included");
        }
        (None, None) => {}
        (s, o) => panic!("{ctx}: final presence diverged: {s:?} vs {o:?}"),
    }
}

#[test]
fn interleaved_streams_match_sequential_replay_under_2_4_8_shards() {
    const STREAMS: u64 = 10;
    const ARRIVALS: usize = 300;
    for shards in [2usize, 4, 8] {
        let config = ServeConfig {
            conflate: false,
            log_optima: true,
            ..ServeConfig::new(shards, 64, 25)
        };
        let service = BandwidthService::new(Epanechnikov, grid(15), config.clone()).unwrap();
        let oracle = GlobalLockService::new(Epanechnikov, grid(15), config).unwrap();

        for id in 0..STREAMS {
            service.open(id).unwrap();
            oracle.open(id).unwrap();
        }
        // One RNG per stream so the arrival sequence is a property of the
        // stream, not of the interleaving.
        let mut rngs: Vec<SplitMix64> =
            (0..STREAMS).map(|id| SplitMix64::new(100 + id)).collect();
        for round in 0..ARRIVALS {
            // Round-robin, reversing the stream order on odd rounds so the
            // shard queues see shifting interleavings.
            for slot in 0..STREAMS {
                let id = if round % 2 == 1 { STREAMS - 1 - slot } else { slot };
                let (x, y) = paper_arrival(&mut rngs[id as usize]);
                service.send_blocking(id, x, y).unwrap();
                oracle.send(id, x, y).unwrap();
            }
        }
        // Close half explicitly, leave the rest to shutdown.
        for id in 0..STREAMS / 2 {
            let served = service.close(id).unwrap();
            let expected = oracle.close(id).unwrap();
            assert_eq!(served.shard, kcv_serve::shard_of(id, shards));
            assert_outcomes_bit_identical(
                &served.outcome,
                &expected,
                &format!("shards={shards} stream={id} (explicit close)"),
            );
        }
        let report = service.shutdown();
        let oracle_rest = oracle.shutdown();
        assert_eq!(report.streams.len(), (STREAMS / 2) as usize);
        assert_eq!(report.streams.len(), oracle_rest.len());
        for (served, (oid, expected)) in report.streams.iter().zip(&oracle_rest) {
            assert_eq!(served.stream, *oid);
            assert_outcomes_bit_identical(
                &served.outcome,
                expected,
                &format!("shards={shards} stream={oid} (shutdown close)"),
            );
        }
        assert_eq!(report.unknown_arrivals, 0);
        assert_eq!(
            report.latencies_nanos.len(),
            (STREAMS as usize) * ARRIVALS,
            "every applied arrival must contribute one latency sample"
        );
    }
}

#[test]
fn conflation_preserves_the_final_bandwidth_and_saves_reselects() {
    const STREAMS: u64 = 6;
    const ARRIVALS: usize = 400;
    let conflated = ServeConfig {
        conflate: true,
        log_optima: true,
        ..ServeConfig::new(3, 96, 20)
    };
    let exact = ServeConfig { conflate: false, ..conflated.clone() };
    let service = BandwidthService::new(Epanechnikov, grid(12), conflated).unwrap();
    let oracle = GlobalLockService::new(Epanechnikov, grid(12), exact).unwrap();
    for id in 0..STREAMS {
        service.open(id).unwrap();
        oracle.open(id).unwrap();
    }
    let mut rngs: Vec<SplitMix64> = (0..STREAMS).map(|id| SplitMix64::new(500 + id)).collect();
    // Bursty per-stream chunks — the traffic shape conflation exists for.
    const CHUNK: usize = 80;
    for chunk_start in (0..ARRIVALS).step_by(CHUNK) {
        for id in 0..STREAMS {
            for _ in chunk_start..(chunk_start + CHUNK).min(ARRIVALS) {
                let (x, y) = paper_arrival(&mut rngs[id as usize]);
                service.send_blocking(id, x, y).unwrap();
                oracle.send(id, x, y).unwrap();
            }
        }
    }
    let report = service.shutdown();
    let oracle_outcomes = oracle.shutdown();
    for (served, (oid, expected)) in report.streams.iter().zip(&oracle_outcomes) {
        assert_eq!(served.stream, *oid);
        let s = served.outcome.final_optimum.expect("served final");
        let o = expected.final_optimum.expect("oracle final");
        assert_eq!(
            s.bandwidth.to_bits(),
            o.bandwidth.to_bits(),
            "stream {oid}: conflated final bandwidth diverged"
        );
        assert_eq!(served.outcome.arrivals, expected.arrivals);
        assert!(
            served.outcome.reselects <= expected.reselects,
            "stream {oid}: conflation must not re-select more often \
             ({} vs {})",
            served.outcome.reselects,
            expected.reselects
        );
    }
}

/// One step of the interleaving proptest below.
#[derive(Debug, Clone, Copy)]
enum Op {
    Open(u8),
    Arrival(u8, f64, f64),
    BadArrival(u8),
    Close(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..4, 0u8..5, 0.0f64..1.0, 0.0f64..1.0).prop_map(|(kind, stream, x, y)| match kind {
        0 => Op::Open(stream),
        1 => Op::Arrival(stream, x, 0.5 * x + 10.0 * x * x + 0.5 * y),
        2 => Op::BadArrival(stream),
        _ => Op::Close(stream),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arrivals interleaved with stream create/close (and hostile inputs:
    /// NaN arrivals, requests to unopened streams) leave the sharded
    /// service and the sequential oracle in bit-identical agreement on
    /// every close outcome.
    #[test]
    fn random_interleavings_of_create_arrive_close_agree_with_the_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        shards in 1usize..5,
    ) {
        let config = ServeConfig {
            conflate: false,
            log_optima: true,
            queue_capacity: 256,
            ..ServeConfig::new(shards, 16, 5)
        };
        let service = BandwidthService::new(Epanechnikov, grid(8), config.clone()).unwrap();
        let oracle = GlobalLockService::new(Epanechnikov, grid(8), config).unwrap();
        let mut expected_unknown = 0u64;
        let mut open: std::collections::HashSet<u8> = std::collections::HashSet::new();
        for op in &ops {
            match *op {
                Op::Open(s) => {
                    let a = service.open(StreamId::from(s));
                    let b = oracle.open(StreamId::from(s));
                    prop_assert_eq!(a.is_ok(), b.is_ok());
                    prop_assert_eq!(a.is_ok(), open.insert(s));
                }
                Op::Arrival(s, x, y) => {
                    service.send_blocking(StreamId::from(s), x, y).unwrap();
                    let _ = oracle.send(StreamId::from(s), x, y);
                    if !open.contains(&s) {
                        expected_unknown += 1;
                    }
                }
                Op::BadArrival(s) => {
                    service.send_blocking(StreamId::from(s), f64::NAN, 0.0).unwrap();
                    let _ = oracle.send(StreamId::from(s), f64::NAN, 0.0);
                    if !open.contains(&s) {
                        expected_unknown += 1;
                    }
                }
                Op::Close(s) => {
                    let a = service.close(StreamId::from(s));
                    let b = oracle.close(StreamId::from(s));
                    prop_assert_eq!(a.is_ok(), b.is_ok());
                    if let (Ok(served), Ok(expected)) = (a, b) {
                        assert_outcomes_bit_identical(
                            &served.outcome,
                            &expected,
                            &format!("prop close stream={s}"),
                        );
                        open.remove(&s);
                    }
                }
            }
        }
        let report = service.shutdown();
        let oracle_rest = oracle.shutdown();
        prop_assert_eq!(report.streams.len(), oracle_rest.len());
        for (served, (oid, expected)) in report.streams.iter().zip(&oracle_rest) {
            prop_assert_eq!(served.stream, *oid);
            assert_outcomes_bit_identical(
                &served.outcome,
                expected,
                &format!("prop shutdown stream={oid}"),
            );
        }
        prop_assert_eq!(report.unknown_arrivals, expected_unknown);
    }
}
