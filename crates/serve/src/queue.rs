//! A bounded MPMC request queue on std sync primitives.
//!
//! The build environment is offline, so instead of pulling tokio or
//! crossbeam this is a `Mutex<VecDeque>` with two condvars — one per
//! direction — which is all a shard needs: many producers enqueue, one
//! worker drains in batches. The queue is *bounded*: [`try_push`] refuses
//! (and counts a shed) when full, giving callers the `Overloaded`
//! backpressure contract instead of unbounded buffering, while [`push`]
//! blocks until space frees for lossless replay.
//!
//! [`try_push`]: BoundedQueue::try_push
//! [`push`]: BoundedQueue::push

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Why an enqueue was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity (counted into the shed total).
    Full,
    /// The queue was [closed](BoundedQueue::close); no further requests
    /// are accepted.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer queue drained in batches by shard workers.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    /// Maximum queue depth ever observed at enqueue time.
    high_water: AtomicU64,
    /// Enqueues refused because the queue was full.
    shed: AtomicU64,
    /// Portion of `shed` already flushed into scoped counters.
    shed_flushed: AtomicU64,
}

impl<T> BoundedQueue<T> {
    /// An empty queue holding at most `capacity` requests.
    ///
    /// # Panics
    /// If `capacity == 0` (the service validates this at construction).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            state: Mutex::new(State { items: VecDeque::with_capacity(capacity), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            high_water: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            shed_flushed: AtomicU64::new(0),
        }
    }

    /// Enqueues without blocking. [`PushError::Full`] sheds the request
    /// (counted; the item is handed back), [`PushError::Closed`] means the
    /// service is shutting down.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut st = self.state.lock().expect("queue lock poisoned");
        if st.closed {
            return Err((item, PushError::Closed));
        }
        if st.items.len() >= self.capacity {
            drop(st);
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Err((item, PushError::Full));
        }
        st.items.push_back(item);
        let depth = st.items.len() as u64;
        drop(st);
        self.high_water.fetch_max(depth, Ordering::Relaxed);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues, blocking while the queue is full. Only fails with
    /// [`PushError::Closed`].
    pub fn push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut st = self.state.lock().expect("queue lock poisoned");
        loop {
            if st.closed {
                return Err((item, PushError::Closed));
            }
            if st.items.len() < self.capacity {
                st.items.push_back(item);
                let depth = st.items.len() as u64;
                drop(st);
                self.high_water.fetch_max(depth, Ordering::Relaxed);
                self.not_empty.notify_one();
                return Ok(());
            }
            st = self.not_full.wait(st).expect("queue lock poisoned");
        }
    }

    /// Drains up to `max` queued requests, blocking while the queue is
    /// empty and open. An empty batch means the queue is closed **and**
    /// fully drained — the worker's signal to exit.
    pub fn drain(&self, max: usize) -> Vec<T> {
        let mut st = self.state.lock().expect("queue lock poisoned");
        while st.items.is_empty() && !st.closed {
            st = self.not_empty.wait(st).expect("queue lock poisoned");
        }
        let take = st.items.len().min(max);
        let batch: Vec<T> = st.items.drain(..take).collect();
        drop(st);
        if !batch.is_empty() {
            self.not_full.notify_all();
        }
        batch
    }

    /// Closes the queue: further pushes fail with [`PushError::Closed`];
    /// already-queued requests remain drainable (graceful shutdown).
    pub fn close(&self) {
        self.state.lock().expect("queue lock poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Requests currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum queue depth observed at enqueue time.
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Total requests shed ([`try_push`](Self::try_push) on a full queue).
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Sheds not yet reported through this method — the worker flushes the
    /// delta into its scoped `shed_requests` counter each drain.
    pub fn take_shed(&self) -> u64 {
        let total = self.shed.load(Ordering::Relaxed);
        let prev = self.shed_flushed.swap(total, Ordering::Relaxed);
        total - prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_sheds_and_counts() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let (item, err) = q.try_push(3).unwrap_err();
        assert_eq!((item, err), (3, PushError::Full));
        assert_eq!(q.shed(), 1);
        assert_eq!(q.take_shed(), 1);
        assert_eq!(q.take_shed(), 0, "flushed sheds are not re-reported");
        assert_eq!(q.high_water(), 2);
    }

    #[test]
    fn drain_batches_in_fifo_order() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.drain(3), vec![0, 1, 2]);
        assert_eq!(q.drain(usize::MAX), vec![3, 4]);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn closed_queue_rejects_pushes_but_drains_the_backlog() {
        let q = BoundedQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert!(matches!(q.try_push(8), Err((8, PushError::Closed))));
        assert!(matches!(q.push(9), Err((9, PushError::Closed))));
        assert_eq!(q.drain(usize::MAX), vec![7]);
        assert_eq!(q.drain(usize::MAX), Vec::<i32>::new(), "closed + drained");
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(0).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1).is_ok())
        };
        // The producer is blocked on the full queue until this drain.
        assert_eq!(q.drain(1), vec![0]);
        assert!(producer.join().unwrap());
        assert_eq!(q.drain(1), vec![1]);
    }
}
