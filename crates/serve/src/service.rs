//! The sharded [`BandwidthService`]: per-shard worker threads draining
//! bounded request queues, burst-coalescing same-stream arrivals, and
//! re-selecting through each stream's [`SlidingWindowSelector`].

use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use kcv_core::cv::{CvOptimum, SlidingWindowSelector};
use kcv_core::grid::BandwidthGrid;
use kcv_core::kernels::PolynomialKernel;
use kcv_obs::{Counter, Recorder, Snapshot};

use crate::queue::{BoundedQueue, PushError};
use crate::{
    merge_snapshots, shard_of, Result, ServeConfig, ServeError, StreamId, StreamOutcome,
};

/// A single-use reply slot for acknowledged requests (open/close).
struct OneShot<T> {
    slot: Mutex<Option<T>>,
    ready: Condvar,
}

impl<T> OneShot<T> {
    fn new() -> Arc<Self> {
        Arc::new(Self { slot: Mutex::new(None), ready: Condvar::new() })
    }

    fn put(&self, value: T) {
        *self.slot.lock().expect("reply slot poisoned") = Some(value);
        self.ready.notify_all();
    }

    fn wait(&self) -> T {
        let mut slot = self.slot.lock().expect("reply slot poisoned");
        loop {
            if let Some(v) = slot.take() {
                return v;
            }
            slot = self.ready.wait(slot).expect("reply slot poisoned");
        }
    }
}

/// One queued request to a shard worker.
enum Request {
    Open { stream: StreamId, reply: Arc<OneShot<Result<()>>> },
    Arrival { stream: StreamId, x: f64, y: f64, enqueued: Instant },
    Close { stream: StreamId, reply: Arc<OneShot<Result<StreamReport>>> },
}

impl Request {
    fn stream(&self) -> StreamId {
        match self {
            Request::Open { stream, .. }
            | Request::Arrival { stream, .. }
            | Request::Close { stream, .. } => *stream,
        }
    }
}

/// The outcome of one stream, as returned by an explicit close or listed
/// in the shutdown [`ServiceReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// The stream's id.
    pub stream: StreamId,
    /// The shard that owned it.
    pub shard: usize,
    /// Counters and final/fired optima.
    pub outcome: StreamOutcome,
}

/// Everything a graceful shutdown hands back.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Streams still open at shutdown, closed in id order per shard.
    pub streams: Vec<StreamReport>,
    /// Enqueue-to-completion latency of every applied arrival burst, one
    /// entry per arrival, in nanoseconds (unsorted; completion includes
    /// the burst's re-selection when one fired).
    pub latencies_nanos: Vec<u64>,
    /// Per-shard recorder snapshots, shard order.
    pub shard_snapshots: Vec<Snapshot>,
    /// The shard snapshots merged service-wide ([`merge_snapshots`]).
    pub metrics: Snapshot,
    /// Arrivals addressed to streams that were never opened (or already
    /// closed) — dropped, never applied.
    pub unknown_arrivals: u64,
}

/// Per-stream worker-side state.
struct StreamState<K> {
    selector: SlidingWindowSelector<K>,
    arrivals: u64,
    rejected: u64,
    reselects: u64,
    optima: Vec<CvOptimum>,
}

/// What a shard worker returns when it exits.
struct ShardOutput {
    reports: Vec<StreamReport>,
    latencies: Vec<u64>,
    snapshot: Snapshot,
    unknown_arrivals: u64,
}

struct Shard {
    queue: Arc<BoundedQueue<Request>>,
    recorder: Recorder,
    worker: Option<JoinHandle<ShardOutput>>,
}

/// The sharded multi-stream selection service; see the crate docs for the
/// architecture and the determinism/backpressure contracts.
pub struct BandwidthService<K> {
    shards: Vec<Shard>,
    config: ServeConfig,
    _kernel: PhantomData<K>,
}

impl<K: PolynomialKernel + Clone + Send + 'static> BandwidthService<K> {
    /// Starts `config.shards` worker threads, each owning a bounded queue
    /// and a private [`Recorder`]. Every stream opened later scores over
    /// `grid` with `kernel`.
    pub fn new(kernel: K, grid: BandwidthGrid, config: ServeConfig) -> Result<Self> {
        config.validate()?;
        let shards = (0..config.shards)
            .map(|index| {
                let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
                let recorder = Recorder::new();
                let worker = std::thread::Builder::new()
                    .name(format!("kcv-serve-{index}"))
                    .spawn({
                        let queue = Arc::clone(&queue);
                        let recorder = recorder.clone();
                        let kernel = kernel.clone();
                        let grid = grid.clone();
                        let config = config.clone();
                        move || worker_loop(index, &queue, &recorder, kernel, grid, &config)
                    })
                    .expect("spawn shard worker");
                Shard { queue, recorder, worker: Some(worker) }
            })
            .collect();
        Ok(Self { shards, config, _kernel: PhantomData })
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    fn shard(&self, stream: StreamId) -> (usize, &Shard) {
        let index = shard_of(stream, self.shards.len());
        (index, &self.shards[index])
    }

    /// Opens a stream: a fresh sliding-window selector on its shard.
    /// Blocks until the shard acknowledges;
    /// [`ServeError::DuplicateStream`] if already open.
    pub fn open(&self, stream: StreamId) -> Result<()> {
        let (_, shard) = self.shard(stream);
        let reply = OneShot::new();
        shard
            .queue
            .push(Request::Open { stream, reply: Arc::clone(&reply) })
            .map_err(|_| ServeError::ShuttingDown)?;
        reply.wait()
    }

    /// Enqueues one arrival without blocking. [`ServeError::Overloaded`]
    /// when the shard's bounded queue is full — the request is shed and
    /// counted, never buffered beyond the bound.
    pub fn send(&self, stream: StreamId, x: f64, y: f64) -> Result<()> {
        let _enqueue = kcv_obs::phase("serve.enqueue");
        let (index, shard) = self.shard(stream);
        shard
            .queue
            .try_push(Request::Arrival { stream, x, y, enqueued: Instant::now() })
            .map_err(|(_, e)| match e {
                PushError::Full => ServeError::Overloaded { shard: index },
                PushError::Closed => ServeError::ShuttingDown,
            })
    }

    /// Enqueues one arrival, waiting while the shard's queue is full
    /// (lossless replay instead of shedding).
    pub fn send_blocking(&self, stream: StreamId, x: f64, y: f64) -> Result<()> {
        let _enqueue = kcv_obs::phase("serve.enqueue");
        let (_, shard) = self.shard(stream);
        shard
            .queue
            .push(Request::Arrival { stream, x, y, enqueued: Instant::now() })
            .map_err(|_| ServeError::ShuttingDown)
    }

    /// Closes a stream after all its queued arrivals: runs a final
    /// re-selection over the surviving window, evicts the selector, and
    /// returns the stream's report.
    pub fn close(&self, stream: StreamId) -> Result<StreamReport> {
        let (_, shard) = self.shard(stream);
        let reply = OneShot::new();
        shard
            .queue
            .push(Request::Close { stream, reply: Arc::clone(&reply) })
            .map_err(|_| ServeError::ShuttingDown)?;
        reply.wait()
    }

    /// The live metrics endpoint: every shard recorder's snapshot merged
    /// service-wide (counters sum, `queue_high_water` by max). Callable
    /// at any time; empty with the `metrics` feature off.
    pub fn metrics(&self) -> Snapshot {
        let snaps: Vec<Snapshot> = self.shards.iter().map(|s| s.recorder.snapshot()).collect();
        merge_snapshots(&snaps)
    }

    /// Graceful shutdown: closes every queue (new requests are refused),
    /// lets each worker drain its backlog, closes surviving streams in id
    /// order, and returns the merged report.
    pub fn shutdown(mut self) -> ServiceReport {
        self.shutdown_inner().expect("service not yet shut down")
    }

    fn shutdown_inner(&mut self) -> Option<ServiceReport> {
        if self.shards.iter().all(|s| s.worker.is_none()) {
            return None;
        }
        for shard in &self.shards {
            shard.queue.close();
        }
        let mut report = ServiceReport {
            streams: Vec::new(),
            latencies_nanos: Vec::new(),
            shard_snapshots: Vec::new(),
            metrics: Snapshot::default(),
            unknown_arrivals: 0,
        };
        for shard in &mut self.shards {
            let Some(worker) = shard.worker.take() else { continue };
            let out = worker.join().expect("shard worker panicked");
            report.streams.extend(out.reports);
            report.latencies_nanos.extend(out.latencies);
            report.shard_snapshots.push(out.snapshot);
            report.unknown_arrivals += out.unknown_arrivals;
        }
        report.streams.sort_by_key(|r| r.stream);
        report.metrics = merge_snapshots(&report.shard_snapshots);
        Some(report)
    }
}

impl<K> Drop for BandwidthService<K> {
    fn drop(&mut self) {
        // Graceful even when the caller forgot to shut down: close the
        // queues and wait the workers out (their output is discarded).
        for shard in &self.shards {
            shard.queue.close();
        }
        for shard in &mut self.shards {
            if let Some(worker) = shard.worker.take() {
                let _ = worker.join();
            }
        }
    }
}

/// One worker thread: drain → group per stream → burst-apply → (maybe
/// conflated) re-select, all inside the shard's recorder scope.
fn worker_loop<K: PolynomialKernel + Clone>(
    shard: usize,
    queue: &BoundedQueue<Request>,
    recorder: &Recorder,
    kernel: K,
    grid: BandwidthGrid,
    config: &ServeConfig,
) -> ShardOutput {
    let scope = recorder.install();
    let mut streams: HashMap<StreamId, StreamState<K>> = HashMap::new();
    let mut latencies: Vec<u64> = Vec::new();
    let mut unknown_arrivals = 0u64;

    loop {
        let batch = queue.drain(usize::MAX);
        if batch.is_empty() {
            break; // closed and fully drained
        }
        let _batch_phase = kcv_obs::phase("serve.batch");
        kcv_obs::add(Counter::RequestsServed, batch.len() as u64);
        kcv_obs::record_max(Counter::QueueHighWater, queue.high_water());
        kcv_obs::add(Counter::ShedRequests, queue.take_shed());

        // Group the batch per stream, preserving each stream's own order
        // (streams are independent, so cross-stream order is free to
        // change — that is what lets interleaved arrivals still coalesce).
        let mut order: Vec<StreamId> = Vec::new();
        let mut by_stream: HashMap<StreamId, Vec<Request>> = HashMap::new();
        for req in batch {
            let slot = by_stream.entry(req.stream()).or_default();
            if slot.is_empty() {
                order.push(req.stream());
            }
            slot.push(req);
        }
        for id in order {
            let requests = by_stream.remove(&id).expect("grouped above");
            process_stream_requests(
                shard,
                id,
                requests,
                &mut streams,
                &mut latencies,
                &mut unknown_arrivals,
                &kernel,
                &grid,
                config,
            );
        }
    }

    // Shutdown: close every surviving stream, id order for determinism.
    let mut ids: Vec<StreamId> = streams.keys().copied().collect();
    ids.sort_unstable();
    let reports = ids
        .into_iter()
        .map(|id| {
            let state = streams.remove(&id).expect("listed above");
            StreamReport { stream: id, shard, outcome: close_state(state, config) }
        })
        .collect();
    kcv_obs::add(Counter::ShedRequests, queue.take_shed());
    drop(scope);
    ShardOutput { reports, latencies, snapshot: recorder.snapshot(), unknown_arrivals }
}

/// Applies one stream's slice of a drained batch: opens/closes in place,
/// arrivals in coalesced bursts.
#[allow(clippy::too_many_arguments)] // worker-internal plumbing
fn process_stream_requests<K: PolynomialKernel + Clone>(
    shard: usize,
    id: StreamId,
    requests: Vec<Request>,
    streams: &mut HashMap<StreamId, StreamState<K>>,
    latencies: &mut Vec<u64>,
    unknown_arrivals: &mut u64,
    kernel: &K,
    grid: &BandwidthGrid,
    config: &ServeConfig,
) {
    let mut i = 0;
    while i < requests.len() {
        match &requests[i] {
            Request::Open { reply, .. } => {
                let result = match streams.entry(id) {
                    std::collections::hash_map::Entry::Occupied(_) => {
                        Err(ServeError::DuplicateStream(id))
                    }
                    std::collections::hash_map::Entry::Vacant(slot) => SlidingWindowSelector::new(
                        kernel.clone(),
                        grid.clone(),
                        config.window,
                        config.cadence,
                    )
                    .map(|selector| {
                        slot.insert(StreamState {
                            selector,
                            arrivals: 0,
                            rejected: 0,
                            reselects: 0,
                            optima: Vec::new(),
                        });
                    })
                    .map_err(Into::into),
                };
                reply.put(result);
                i += 1;
            }
            Request::Close { reply, .. } => {
                let result = match streams.remove(&id) {
                    Some(state) => Ok(StreamReport {
                        stream: id,
                        shard,
                        outcome: close_state(state, config),
                    }),
                    None => Err(ServeError::UnknownStream(id)),
                };
                reply.put(result);
                i += 1;
            }
            Request::Arrival { .. } => {
                let mut j = i;
                while j < requests.len() && matches!(requests[j], Request::Arrival { .. }) {
                    j += 1;
                }
                apply_burst(&requests[i..j], streams.get_mut(&id), latencies, unknown_arrivals, config);
                i = j;
            }
        }
    }
}

/// One tree-update burst: every arrival folds in via `push_deferred`; with
/// conflation the cadence boundaries the burst crossed fund a single
/// trailing `reselect()`, without it the worker re-selects exactly where a
/// sequential `push` would have.
fn apply_burst<K: PolynomialKernel + Clone>(
    burst: &[Request],
    state: Option<&mut StreamState<K>>,
    latencies: &mut Vec<u64>,
    unknown_arrivals: &mut u64,
    config: &ServeConfig,
) {
    match state {
        None => *unknown_arrivals += burst.len() as u64,
        Some(state) => {
            let mut due_any = false;
            for req in burst {
                let Request::Arrival { x, y, .. } = req else { unreachable!("burst of arrivals") };
                match state.selector.push_deferred(*x, *y) {
                    Ok(due) => {
                        state.arrivals += 1;
                        if due {
                            if config.conflate {
                                due_any = true;
                            } else {
                                fire_reselect(state, config);
                            }
                        }
                    }
                    Err(_) => state.rejected += 1, // window untouched (PR 10 contract)
                }
            }
            if due_any {
                fire_reselect(state, config);
            }
            if burst.len() > 1 {
                kcv_obs::add(Counter::CoalescedArrivals, burst.len() as u64 - 1);
            }
        }
    }
    let done = Instant::now();
    for req in burst {
        let Request::Arrival { enqueued, .. } = req else { unreachable!("burst of arrivals") };
        latencies.push(done.duration_since(*enqueued).as_nanos() as u64);
    }
}

fn fire_reselect<K: PolynomialKernel + Clone>(state: &mut StreamState<K>, config: &ServeConfig) {
    let _reselect = kcv_obs::phase("serve.reselect");
    if let Ok(opt) = state.selector.reselect_now() {
        state.reselects += 1;
        if config.log_optima {
            state.optima.push(opt);
        }
    }
}

/// Close semantics shared by explicit close and shutdown: a final
/// re-selection over the surviving window (when ≥ 2 observations live),
/// then the counters roll up into the outcome.
fn close_state<K: PolynomialKernel + Clone>(
    mut state: StreamState<K>,
    _config: &ServeConfig,
) -> StreamOutcome {
    let final_optimum = if state.selector.len() >= 2 {
        let _reselect = kcv_obs::phase("serve.reselect");
        match state.selector.reselect_now() {
            Ok(opt) => {
                state.reselects += 1;
                Some(opt)
            }
            Err(_) => state.selector.current(),
        }
    } else {
        state.selector.current()
    };
    StreamOutcome {
        final_optimum,
        arrivals: state.arrivals,
        rejected: state.rejected,
        reselects: state.reselects,
        optima: state.optima,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcv_core::kernels::Epanechnikov;
    use kcv_core::util::SplitMix64;

    fn grid() -> BandwidthGrid {
        BandwidthGrid::log(0.01, 0.5, 12).unwrap()
    }

    #[test]
    fn open_push_close_round_trip() {
        let config = ServeConfig {
            conflate: false,
            log_optima: true,
            ..ServeConfig::new(2, 64, 16)
        };
        let service = BandwidthService::new(Epanechnikov, grid(), config).unwrap();
        service.open(7).unwrap();
        assert!(matches!(service.open(7), Err(ServeError::DuplicateStream(7))));
        let mut rng = SplitMix64::new(41);
        for _ in 0..80 {
            let x = rng.next_f64();
            let y = 0.5 * x + 10.0 * x * x + 0.5 * rng.next_f64();
            service.send_blocking(7, x, y).unwrap();
        }
        let report = service.close(7).unwrap();
        assert_eq!(report.stream, 7);
        assert_eq!(report.outcome.arrivals, 80);
        assert_eq!(report.outcome.rejected, 0);
        // 80 arrivals at cadence 16 → 5 cadence firings plus the final
        // close re-selection.
        assert_eq!(report.outcome.reselects, 6);
        assert_eq!(report.outcome.optima.len(), 5);
        assert!(report.outcome.final_optimum.is_some());
        assert!(matches!(service.close(7), Err(ServeError::UnknownStream(7))));
        let report = service.shutdown();
        assert!(report.streams.is_empty());
        assert_eq!(report.unknown_arrivals, 0);
    }

    #[test]
    fn non_finite_arrivals_are_rejected_not_applied() {
        let config = ServeConfig { conflate: false, ..ServeConfig::new(1, 32, 8) };
        let service = BandwidthService::new(Epanechnikov, grid(), config).unwrap();
        service.open(1).unwrap();
        let mut rng = SplitMix64::new(42);
        for i in 0..40 {
            if i % 10 == 3 {
                service.send_blocking(1, f64::NAN, 1.0).unwrap();
            } else {
                service.send_blocking(1, rng.next_f64(), rng.next_f64()).unwrap();
            }
        }
        let report = service.close(1).unwrap();
        assert_eq!(report.outcome.arrivals, 36);
        assert_eq!(report.outcome.rejected, 4);
        assert!(report.outcome.final_optimum.is_some());
        drop(service);
    }

    #[test]
    fn arrivals_to_unopened_streams_are_dropped_and_counted() {
        let service =
            BandwidthService::new(Epanechnikov, grid(), ServeConfig::new(2, 32, 8)).unwrap();
        for i in 0..5 {
            service.send_blocking(99, i as f64 / 5.0, 0.0).unwrap();
        }
        let report = service.shutdown();
        assert_eq!(report.unknown_arrivals, 5);
        assert!(report.streams.is_empty());
    }

    #[test]
    fn shutdown_closes_surviving_streams_in_id_order() {
        let service =
            BandwidthService::new(Epanechnikov, grid(), ServeConfig::new(4, 32, 8)).unwrap();
        let mut rng = SplitMix64::new(43);
        for id in [11u64, 3, 27, 8] {
            service.open(id).unwrap();
            for _ in 0..20 {
                service.send_blocking(id, rng.next_f64(), rng.next_f64()).unwrap();
            }
        }
        let report = service.shutdown();
        let ids: Vec<StreamId> = report.streams.iter().map(|r| r.stream).collect();
        assert_eq!(ids, vec![3, 8, 11, 27]);
        for r in &report.streams {
            assert_eq!(r.outcome.arrivals, 20);
            assert!(r.outcome.final_optimum.is_some());
        }
        assert_eq!(report.latencies_nanos.len(), 80);
        assert_eq!(report.shard_snapshots.len(), 4);
    }

    #[test]
    fn requests_after_shutdown_report_shutting_down() {
        let service =
            BandwidthService::new(Epanechnikov, grid(), ServeConfig::new(1, 8, 4)).unwrap();
        let queue = Arc::clone(&service.shards[0].queue);
        queue.close();
        assert!(matches!(service.send(1, 0.1, 0.2), Err(ServeError::ShuttingDown)));
        assert!(matches!(service.open(1), Err(ServeError::ShuttingDown)));
    }
}
