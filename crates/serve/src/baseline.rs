//! The comparison point the serve bench and perf gate 22 measure against:
//! one global `Mutex` around a plain stream map, every arrival processed
//! synchronously on the caller's thread with a full
//! [`SlidingWindowSelector::push`] — no queues, no batching, no
//! coalescing, a re-selection at **every** cadence boundary.
//!
//! Close semantics match [`crate::BandwidthService`] exactly (final
//! re-selection over the surviving window), so per-stream final bandwidths
//! are directly comparable — the identity gate 22 asserts.

use std::collections::HashMap;
use std::sync::Mutex;

use kcv_core::cv::{CvOptimum, SlidingWindowSelector};
use kcv_core::grid::BandwidthGrid;
use kcv_core::kernels::PolynomialKernel;

use crate::{Result, ServeConfig, ServeError, StreamId, StreamOutcome};

struct StreamState<K> {
    selector: SlidingWindowSelector<K>,
    arrivals: u64,
    rejected: u64,
    reselects: u64,
    optima: Vec<CvOptimum>,
}

/// A single-global-lock multi-stream selector map (the baseline).
pub struct GlobalLockService<K> {
    kernel: K,
    grid: BandwidthGrid,
    config: ServeConfig,
    streams: Mutex<HashMap<StreamId, StreamState<K>>>,
}

impl<K: PolynomialKernel + Clone> GlobalLockService<K> {
    /// A baseline service; only `window`, `cadence`, and `log_optima` of
    /// `config` apply (there are no shards or queues to configure).
    pub fn new(kernel: K, grid: BandwidthGrid, config: ServeConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self { kernel, grid, config, streams: Mutex::new(HashMap::new()) })
    }

    /// Opens a stream under the global lock.
    pub fn open(&self, stream: StreamId) -> Result<()> {
        let mut streams = self.streams.lock().expect("stream map poisoned");
        if streams.contains_key(&stream) {
            return Err(ServeError::DuplicateStream(stream));
        }
        let selector = SlidingWindowSelector::new(
            self.kernel.clone(),
            self.grid.clone(),
            self.config.window,
            self.config.cadence,
        )?;
        streams.insert(
            stream,
            StreamState { selector, arrivals: 0, rejected: 0, reselects: 0, optima: Vec::new() },
        );
        Ok(())
    }

    /// Applies one arrival synchronously: the lock is held across the tree
    /// update *and* any cadence re-selection — the convoy the sharded
    /// service exists to avoid.
    pub fn send(&self, stream: StreamId, x: f64, y: f64) -> Result<Option<CvOptimum>> {
        let mut streams = self.streams.lock().expect("stream map poisoned");
        let state =
            streams.get_mut(&stream).ok_or(ServeError::UnknownStream(stream))?;
        match state.selector.push(x, y) {
            Ok(fired) => {
                state.arrivals += 1;
                if let Some(opt) = fired {
                    state.reselects += 1;
                    if self.config.log_optima {
                        state.optima.push(opt);
                    }
                }
                Ok(fired)
            }
            Err(_) => {
                state.rejected += 1;
                Ok(None)
            }
        }
    }

    /// Closes a stream: final re-selection over the surviving window, same
    /// contract as the sharded service.
    pub fn close(&self, stream: StreamId) -> Result<StreamOutcome> {
        let mut streams = self.streams.lock().expect("stream map poisoned");
        let state = streams.remove(&stream).ok_or(ServeError::UnknownStream(stream))?;
        Ok(close_state(state))
    }

    /// Closes every surviving stream in id order and returns
    /// `(stream, outcome)` pairs — the baseline's shutdown.
    pub fn shutdown(self) -> Vec<(StreamId, StreamOutcome)> {
        let mut streams = self.streams.into_inner().expect("stream map poisoned");
        let mut ids: Vec<StreamId> = streams.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter()
            .map(|id| (id, close_state(streams.remove(&id).expect("listed above"))))
            .collect()
    }
}

fn close_state<K: PolynomialKernel + Clone>(mut state: StreamState<K>) -> StreamOutcome {
    let final_optimum = if state.selector.len() >= 2 {
        match state.selector.reselect_now() {
            Ok(opt) => {
                state.reselects += 1;
                Some(opt)
            }
            Err(_) => state.selector.current(),
        }
    } else {
        state.selector.current()
    };
    StreamOutcome {
        final_optimum,
        arrivals: state.arrivals,
        rejected: state.rejected,
        reselects: state.reselects,
        optima: state.optima,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcv_core::kernels::Epanechnikov;
    use kcv_core::util::SplitMix64;

    #[test]
    fn baseline_reselects_at_every_cadence_boundary() {
        let grid = BandwidthGrid::log(0.01, 0.5, 10).unwrap();
        let config = ServeConfig { log_optima: true, ..ServeConfig::new(1, 64, 16) };
        let svc = GlobalLockService::new(Epanechnikov, grid, config).unwrap();
        svc.open(5).unwrap();
        assert!(matches!(svc.open(5), Err(ServeError::DuplicateStream(5))));
        let mut rng = SplitMix64::new(44);
        let mut fired = 0;
        for _ in 0..80 {
            if svc.send(5, rng.next_f64(), rng.next_f64()).unwrap().is_some() {
                fired += 1;
            }
        }
        assert_eq!(fired, 5);
        let outcome = svc.close(5).unwrap();
        assert_eq!(outcome.arrivals, 80);
        assert_eq!(outcome.reselects, 6, "five cadence firings plus the close");
        assert_eq!(outcome.optima.len(), 5);
        assert!(matches!(svc.close(5), Err(ServeError::UnknownStream(5))));
    }
}
