//! # kcv-serve — the sharded multi-stream bandwidth service
//!
//! The ROADMAP's "heavy traffic" front-end over the incremental CV engine:
//! many concurrent arrival streams, each owning a
//! [`SlidingWindowSelector`](kcv_core::cv::incremental::SlidingWindowSelector),
//! multiplexed across a fixed set of worker **shards**.
//!
//! ## Architecture
//!
//! * **Sharding** — every stream id hashes (FNV-1a) to one of
//!   [`ServeConfig::shards`] shards; a shard is one worker thread owning
//!   its streams' selectors outright, so no selector is ever touched by
//!   two threads and no per-stream locking exists.
//! * **Backpressure** — each shard drains a bounded MPMC request queue
//!   ([`queue::BoundedQueue`]). [`BandwidthService::send`] refuses with
//!   [`ServeError::Overloaded`] when the shard's queue is full (the shed
//!   is counted) instead of buffering without bound;
//!   [`BandwidthService::send_blocking`] waits for space when the caller
//!   prefers lossless replay over latency.
//! * **Coalescing** — a worker drains whole batches and groups each
//!   stream's pending arrivals into one tree-update **burst**. With
//!   [`ServeConfig::conflate`] on, a burst that crosses one or more
//!   re-selection boundaries funds a **single** cadence `reselect()` at
//!   the end of the burst — under load this is where the service's
//!   throughput over a global-lock stream map comes from, because the
//!   `O(W·k·(log W + deg²))` re-selection dominates the `O(log W)`
//!   per-arrival tree update. With `conflate` off the worker re-selects
//!   exactly when a sequential
//!   [`SlidingWindowSelector::push`](kcv_core::cv::incremental::SlidingWindowSelector::push)
//!   would, so
//!   every per-stream [`CvOptimum`] sequence is **bit-identical** to
//!   driving that stream's selector sequentially (the determinism suite
//!   pins this under 2/4/8 shards).
//! * **Lifecycle** — streams are opened and closed explicitly
//!   ([`BandwidthService::open`] / [`BandwidthService::close`], the latter
//!   returning the stream's [`StreamReport`] after a final re-selection);
//!   [`BandwidthService::shutdown`] closes the queues, drains every
//!   remaining request, closes surviving streams, and returns the merged
//!   [`ServiceReport`].
//! * **Metrics** — each shard worker installs its own [`kcv_obs::Recorder`]
//!   scope, so engine counters (`tree_updates`, `reselects`, zero
//!   `kernel_evals`) and the serving counters (`requests_served`,
//!   `coalesced_arrivals`, `queue_high_water`, `shed_requests`) are
//!   attributed per shard and merged by [`merge_snapshots`]
//!   (`queue_high_water` merges by **max**, everything else sums);
//!   [`BandwidthService::metrics`] is the live endpoint. Workers run
//!   `serve.batch`/`serve.reselect` phases and callers `serve.enqueue`.
//!
//! The `serve` bench binary (`crates/bench`) replays 256 concurrent
//! paper-DGP streams × 10⁴ arrivals through 8 shards against a
//! single-global-lock baseline ([`GlobalLockService`]); perf gates 20–22
//! hold the serving contract (schema v7, zero kernel evaluations with
//! coalescing observed, ≥ 4× throughput at identical per-stream final
//! bandwidths).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline;
pub mod queue;
pub mod service;

pub use baseline::GlobalLockService;
pub use service::{BandwidthService, ServiceReport, StreamReport};

use std::fmt;

use kcv_core::cv::CvOptimum;
use kcv_core::error::Error as CoreError;
use kcv_obs::{PhaseStat, Snapshot};

/// Identifier of one arrival stream (e.g. a user or sensor id).
pub type StreamId = u64;

/// Errors produced by the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The target shard's bounded queue is full; the request was shed
    /// (backpressure instead of unbounded buffering). Retry later or use
    /// the blocking send.
    Overloaded {
        /// The shard whose queue refused the request.
        shard: usize,
    },
    /// The stream is not open on its shard.
    UnknownStream(StreamId),
    /// [`BandwidthService::open`] on an already-open stream.
    DuplicateStream(StreamId),
    /// The service is shutting down; no further requests are accepted.
    ShuttingDown,
    /// An error surfaced by the underlying `kcv-core` engine.
    Core(CoreError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { shard } => {
                write!(f, "shard {shard} queue full: request shed (backpressure)")
            }
            ServeError::UnknownStream(id) => write!(f, "stream {id} is not open"),
            ServeError::DuplicateStream(id) => write!(f, "stream {id} is already open"),
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Core(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

/// Convenience alias for serving-layer results.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Configuration of a [`BandwidthService`] (and, window/cadence-wise, of
/// the [`GlobalLockService`] baseline).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker shards (threads); streams hash here. Must be positive.
    pub shards: usize,
    /// Bounded request-queue capacity per shard. Must be positive.
    pub queue_capacity: usize,
    /// Sliding-window capacity `W` of every stream's selector (≥ 2).
    pub window: usize,
    /// Re-selection cadence in arrivals (> 0).
    pub cadence: usize,
    /// Conflate re-selections within a burst: a burst crossing one or more
    /// cadence boundaries runs **one** `reselect()` at its end instead of
    /// one per boundary. Off = per-stream results bit-identical to
    /// sequential replay; on = the throughput mode the serve bench gates.
    pub conflate: bool,
    /// Record every fired [`CvOptimum`] per stream in its
    /// [`StreamOutcome::optima`] (the
    /// determinism suite's evidence; off for long benchmark replays).
    pub log_optima: bool,
}

impl ServeConfig {
    /// A service of `shards` shards with window `window` and cadence
    /// `cadence`, a 1 024-deep queue per shard, conflation on, and optima
    /// logging off.
    pub fn new(shards: usize, window: usize, cadence: usize) -> Self {
        Self { shards, queue_capacity: 1024, window, cadence, conflate: true, log_optima: false }
    }

    /// Validates every field, mirroring the engine's constructor contract.
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(CoreError::InvalidParameter {
                name: "shards",
                requirement: "positive (streams hash to worker shards)",
            }
            .into());
        }
        if self.queue_capacity == 0 {
            return Err(CoreError::InvalidParameter {
                name: "queue_capacity",
                requirement: "positive (a shard must be able to queue a request)",
            }
            .into());
        }
        if self.window < 2 {
            return Err(CoreError::InvalidParameter {
                name: "capacity",
                requirement: "at least 2 (cross-validation needs two observations)",
            }
            .into());
        }
        if self.cadence == 0 {
            return Err(CoreError::InvalidParameter {
                name: "cadence",
                requirement: "positive (arrivals between re-selections)",
            }
            .into());
        }
        Ok(())
    }
}

/// The shard a stream id hashes to: FNV-1a over the id's little-endian
/// bytes, reduced mod `shards`. Cheap, deterministic, and spreads
/// sequential ids instead of striping them.
pub fn shard_of(stream: StreamId, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in stream.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// Merges per-shard [`Snapshot`]s into one service-wide snapshot: counters
/// sum, except `queue_high_water` which is **max**-semantics (the deepest
/// single queue observed, not a meaningless sum of depths); phases sum
/// calls and nanos by name.
pub fn merge_snapshots(snaps: &[Snapshot]) -> Snapshot {
    let mut counters: Vec<(&'static str, u64)> = Vec::new();
    let mut phases: Vec<PhaseStat> = Vec::new();
    for snap in snaps {
        for &(name, value) in &snap.counters {
            match counters.iter_mut().find(|(n, _)| *n == name) {
                Some((_, total)) => {
                    if name == "queue_high_water" {
                        *total = (*total).max(value);
                    } else {
                        *total += value;
                    }
                }
                None => counters.push((name, value)),
            }
        }
        for p in &snap.phases {
            match phases.iter_mut().find(|q| q.name == p.name) {
                Some(q) => {
                    q.calls += p.calls;
                    q.nanos += p.nanos;
                }
                None => phases.push(p.clone()),
            }
        }
    }
    Snapshot { counters, phases }
}

/// Per-stream outcome returned by a close (explicit or at shutdown).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamOutcome {
    /// The stream's final optimum (a fresh re-selection over the surviving
    /// window at close time), when the window held ≥ 2 observations.
    pub final_optimum: Option<CvOptimum>,
    /// Arrivals applied to the window.
    pub arrivals: u64,
    /// Arrivals rejected (non-finite `x`/`y`); the window was untouched.
    pub rejected: u64,
    /// Re-selections performed (including the final one).
    pub reselects: u64,
    /// Every fired optimum in order, when optima logging was on.
    pub optima: Vec<CvOptimum>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_hash_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 7, 8] {
            for id in 0..64u64 {
                let s = shard_of(id, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(id, shards));
            }
        }
        // Sequential ids spread: 64 ids over 8 shards should hit them all.
        let mut hit = [false; 8];
        for id in 0..64u64 {
            hit[shard_of(id, 8)] = true;
        }
        assert!(hit.iter().all(|&h| h), "FNV spread left a shard empty");
    }

    #[test]
    fn config_validation_rejects_zeroes() {
        assert!(ServeConfig::new(0, 64, 16).validate().is_err());
        assert!(ServeConfig { queue_capacity: 0, ..ServeConfig::new(2, 64, 16) }
            .validate()
            .is_err());
        assert!(ServeConfig::new(2, 1, 16).validate().is_err());
        assert!(ServeConfig::new(2, 64, 0).validate().is_err());
        assert!(ServeConfig::new(2, 64, 16).validate().is_ok());
    }

    #[test]
    fn snapshot_merge_sums_except_high_water() {
        let a = Snapshot {
            counters: vec![("reselects", 3), ("queue_high_water", 10)],
            phases: vec![PhaseStat { name: "serve.batch".into(), calls: 2, nanos: 100 }],
        };
        let b = Snapshot {
            counters: vec![("reselects", 4), ("queue_high_water", 7)],
            phases: vec![PhaseStat { name: "serve.batch".into(), calls: 1, nanos: 50 }],
        };
        let m = merge_snapshots(&[a, b]);
        assert_eq!(m.counter("reselects"), 7);
        assert_eq!(m.counter("queue_high_water"), 10, "max, not sum");
        let p = &m.phases[0];
        assert_eq!((p.calls, p.nanos), (3, 150));
    }

    #[test]
    fn serve_errors_display() {
        let errs = [
            ServeError::Overloaded { shard: 3 },
            ServeError::UnknownStream(9),
            ServeError::DuplicateStream(9),
            ServeError::ShuttingDown,
            ServeError::Core(CoreError::DegenerateDomain),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
