//! `npreg` — fitting the regression at a selected bandwidth.

use crate::regbw::{CKerType, NpRegBw, RegType};
use kcv_core::diagnostics::{diagnostics, FitDiagnostics};
use kcv_core::error::Result;
use kcv_core::estimate::{LocalLinear, NadarayaWatson, RegressionEstimator};
use kcv_core::kernels::{Epanechnikov, Gaussian, Uniform};

/// The fitted regression object — the analogue of R's `npregression`.
#[derive(Debug, Clone)]
pub struct NpReg {
    /// The bandwidth used.
    pub bw: f64,
    /// Fitted values `ĝ(X_i)` (`None` where degenerate).
    pub fitted: Vec<Option<f64>>,
    /// In-sample residuals (`None` where degenerate).
    pub residuals: Vec<Option<f64>>,
    /// Fit diagnostics (MSE, R², LOO MSE).
    pub diagnostics: FitDiagnostics,
}

impl NpReg {
    /// An np-style text summary.
    pub fn summary(&self) -> String {
        format!(
            "Regression Data: {} training points\n\
             Bandwidth: {:.6}\n\
             Kernel Regression Estimator\n\n\
             Residual standard error: {:.6}\n\
             R-squared: {:.6}\n",
            self.fitted.len(),
            self.bw,
            self.diagnostics.mse.sqrt(),
            self.diagnostics.r_squared,
        )
    }
}

/// Fits the regression implied by a [`NpRegBw`] object on `(x, y)` —
/// `npreg(bws)` in R.
pub fn npreg(bws: &NpRegBw, x: &[f64], y: &[f64]) -> Result<NpReg> {
    macro_rules! fit_with {
        ($kernel:expr) => {{
            match bws.options.regtype {
                RegType::Lc => {
                    let fit = NadarayaWatson::new(x, y, $kernel, bws.bw)?;
                    (fit.fitted(), diagnostics(&fit, y))
                }
                RegType::Ll => {
                    let fit = LocalLinear::new(x, y, $kernel, bws.bw)?;
                    (fit.fitted(), diagnostics(&fit, y))
                }
            }
        }};
    }
    let (fitted, diag) = match bws.options.ckertype {
        CKerType::Epanechnikov => fit_with!(Epanechnikov),
        CKerType::Gaussian => fit_with!(Gaussian),
        CKerType::Uniform => fit_with!(Uniform),
    };
    let residuals = fitted
        .iter()
        .zip(y)
        .map(|(f, &yi)| f.map(|g| yi - g))
        .collect();
    Ok(NpReg { bw: bws.bw, fitted, residuals, diagnostics: diag })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regbw::{npregbw, NpRegBwOptions};
    use kcv_core::util::SplitMix64;

    fn paper_dgp(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.next_f64())
            .collect();
        (x, y)
    }

    #[test]
    fn end_to_end_fit_is_good_on_paper_dgp() {
        let (x, y) = paper_dgp(300, 11);
        let bws = npregbw(&x, &y, NpRegBwOptions::default()).unwrap();
        let fit = npreg(&bws, &x, &y).unwrap();
        assert!(fit.diagnostics.r_squared > 0.95, "R² {}", fit.diagnostics.r_squared);
        assert_eq!(fit.fitted.len(), 300);
        // Residuals consistent with fitted values.
        for ((f, r), &yi) in fit.fitted.iter().zip(&fit.residuals).zip(&y) {
            match (f, r) {
                (Some(g), Some(res)) => assert!((yi - g - res).abs() < 1e-12),
                (None, None) => {}
                other => panic!("inconsistent fit/residual: {other:?}"),
            }
        }
    }

    #[test]
    fn local_linear_fit_works() {
        let (x, y) = paper_dgp(150, 12);
        let bws = npregbw(
            &x,
            &y,
            NpRegBwOptions { regtype: RegType::Ll, ..Default::default() },
        )
        .unwrap();
        let fit = npreg(&bws, &x, &y).unwrap();
        assert!(fit.diagnostics.r_squared > 0.95);
    }

    #[test]
    fn summary_is_printable() {
        let (x, y) = paper_dgp(80, 13);
        let bws = npregbw(&x, &y, NpRegBwOptions::default()).unwrap();
        let fit = npreg(&bws, &x, &y).unwrap();
        let s = fit.summary();
        assert!(s.contains("R-squared"));
        assert!(s.contains("Bandwidth"));
    }
}
