//! # kcv-np — an `np`-style numerical-optimisation bandwidth selector
//!
//! The paper's benchmark Program 1 is `npregbw` from the R package `np`
//! (Racine & Hayfield): least-squares cross-validation minimised with
//! derivative-free numerical optimisation and optional random restarts
//! (`nmulti`). Program 2 is the author's multicore R variant of the same
//! computation. This crate reimplements that *algorithmic* content behind an
//! R-flavoured interface:
//!
//! * [`npregbw`] — bandwidth selection: the `O(n²)`-per-evaluation CV
//!   objective minimised by Nelder–Mead with `nmulti` restarts
//!   (sequential ⇒ Program 1; `parallel = true` evaluates the objective
//!   across cores ⇒ Program 2);
//! * [`npreg`] — fits the regression at the selected bandwidth and reports
//!   fitted values, residuals and R², like R's `npreg(bws)`;
//! * [`NpRegBw::summary`] — an `np`-style text summary.
//!
//! As the paper (and the np manual itself) note, the CV objective is not
//! concave, so this selector can return non-global minima depending on the
//! restart draws — the defect the paper's grid search removes.
//!
//! ```
//! use kcv_np::{npreg, npregbw, NpRegBwOptions};
//!
//! let x: Vec<f64> = (0..120).map(|i| i as f64 / 119.0).collect();
//! let y: Vec<f64> = x.iter().map(|&v| (4.0 * v).sin()).collect();
//! let bws = npregbw(&x, &y, NpRegBwOptions::default()).unwrap();
//! let fit = npreg(&bws, &x, &y).unwrap();
//! assert!(fit.diagnostics.r_squared > 0.9);
//! println!("{}", bws.summary());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod dens;
mod objective;
mod reg;
mod regbw;

pub use dens::{
    npudens, npudensbw, DensBwMethod, DensKernel, NpUDens, NpUDensBw, NpUDensBwOptions,
};
pub use objective::{cv_objective, cv_objective_parallel};
pub use reg::{npreg, NpReg};
pub use regbw::{npregbw, BwMethod, CKerType, NpRegBw, NpRegBwOptions, RegType};
