//! `npudensbw` / `npudens` — the np package's *density* interface, wrapping
//! the workspace's LSCV machinery: unconditional density bandwidth
//! selection by least-squares cross-validation, then density estimation.

use kcv_core::density::{lscv_profile_naive, lscv_profile_sorted, Kde};
use kcv_core::error::{Error, Result};
use kcv_core::grid::BandwidthGrid;
use kcv_core::kernels::{
    Epanechnikov, EpanechnikovConvolution, Gaussian, GaussianConvolution, Kernel,
};
use kcv_core::select::rule_of_thumb::silverman_bandwidth;

/// Bandwidth-selection method for the density interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DensBwMethod {
    /// Least-squares cross-validation over a grid (`"cv.ls"`), using the
    /// sorted sweep where the kernel admits it.
    CvLs {
        /// Number of grid candidates.
        grid_size: usize,
    },
    /// Silverman's normal-reference rule (`"normal-reference"`).
    NormalReference,
}

/// Kernel choice for the density interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DensKernel {
    /// Epanechnikov (sorted-sweep LSCV).
    Epanechnikov,
    /// Gaussian (naive LSCV).
    Gaussian,
}

/// Options for [`npudensbw`].
#[derive(Debug, Clone)]
pub struct NpUDensBwOptions {
    /// Selection method (default: 100-point LSCV).
    pub bwmethod: DensBwMethod,
    /// Kernel (default Epanechnikov, matching the regression side).
    pub ckertype: DensKernel,
}

impl Default for NpUDensBwOptions {
    fn default() -> Self {
        Self { bwmethod: DensBwMethod::CvLs { grid_size: 100 }, ckertype: DensKernel::Epanechnikov }
    }
}

/// The result object of [`npudensbw`].
#[derive(Debug, Clone)]
pub struct NpUDensBw {
    /// The selected bandwidth.
    pub bw: f64,
    /// The LSCV objective at the optimum (`NaN` for the reference rule).
    pub fval: f64,
    /// Options used.
    pub options: NpUDensBwOptions,
    /// Sample size.
    pub n: usize,
}

impl NpUDensBw {
    /// An np-style text summary.
    pub fn summary(&self) -> String {
        let method = match self.options.bwmethod {
            DensBwMethod::CvLs { .. } => "Least Squares Cross-Validation",
            DensBwMethod::NormalReference => "Normal Reference",
        };
        let kernel = match self.options.ckertype {
            DensKernel::Epanechnikov => "Epanechnikov",
            DensKernel::Gaussian => "Second-Order Gaussian",
        };
        format!(
            "Density Data ({} observations, 1 variable(s)):\n\n\
             Bandwidth Selection Method: {method}\n\
             Var. Name: x  Bandwidth: {:.6}\n\
             Continuous Kernel Type: {kernel}\n",
            self.n, self.bw,
        )
    }
}

/// Selects an unconditional-density bandwidth for `x`.
pub fn npudensbw(x: &[f64], options: NpUDensBwOptions) -> Result<NpUDensBw> {
    if x.len() < 2 {
        return Err(Error::SampleTooSmall { n: x.len(), required: 2 });
    }
    let (bw, fval) = match options.bwmethod {
        DensBwMethod::NormalReference => {
            let h = match options.ckertype {
                DensKernel::Epanechnikov => silverman_bandwidth(x, &Epanechnikov)?,
                DensKernel::Gaussian => silverman_bandwidth(x, &Gaussian)?,
            };
            (h, f64::NAN)
        }
        DensBwMethod::CvLs { grid_size } => {
            let grid = BandwidthGrid::paper_default(x, grid_size)?;
            let profile = match options.ckertype {
                DensKernel::Epanechnikov => {
                    lscv_profile_sorted(x, &grid, &Epanechnikov, &EpanechnikovConvolution)?
                }
                DensKernel::Gaussian => {
                    lscv_profile_naive(x, &grid, &Gaussian, &GaussianConvolution)?
                }
            };
            let (_, h, f) = profile.argmin()?;
            (h, f)
        }
    };
    Ok(NpUDensBw { bw, fval, options, n: x.len() })
}

/// The fitted density object of [`npudens`].
#[derive(Debug, Clone)]
pub struct NpUDens {
    /// Bandwidth used.
    pub bw: f64,
    /// Density estimates at the sample points.
    pub dens: Vec<f64>,
    /// Log-likelihood `Σ log f̂(X_i)` (density clamped away from zero).
    pub log_likelihood: f64,
}

/// Evaluates the density implied by a [`NpUDensBw`] object at the sample
/// points — `npudens(bws)` in R.
pub fn npudens(bws: &NpUDensBw, x: &[f64]) -> Result<NpUDens> {
    let dens = match bws.options.ckertype {
        DensKernel::Epanechnikov => eval_all(x, &Epanechnikov, bws.bw)?,
        DensKernel::Gaussian => eval_all(x, &Gaussian, bws.bw)?,
    };
    let log_likelihood = dens.iter().map(|&d| d.max(1e-300).ln()).sum();
    Ok(NpUDens { bw: bws.bw, dens, log_likelihood })
}

fn eval_all<K: Kernel + Clone>(x: &[f64], kernel: &K, h: f64) -> Result<Vec<f64>> {
    let kde = Kde::new(x, kernel.clone(), h)?;
    Ok(x.iter().map(|&p| kde.evaluate(p)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn bimodal(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let u1: f64 = rng.random::<f64>().max(1e-12);
                let u2: f64 = rng.random();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                if i % 2 == 0 {
                    0.3 * z
                } else {
                    3.0 + 0.3 * z
                }
            })
            .collect()
    }

    #[test]
    fn lscv_bandwidth_is_tighter_than_reference_on_bimodal_data() {
        let x = bimodal(400, 1);
        let cv = npudensbw(&x, NpUDensBwOptions::default()).unwrap();
        let nr = npudensbw(
            &x,
            NpUDensBwOptions { bwmethod: DensBwMethod::NormalReference, ..Default::default() },
        )
        .unwrap();
        assert!(cv.bw < nr.bw, "cv {} vs reference {}", cv.bw, nr.bw);
        assert!(cv.fval.is_finite());
        assert!(nr.fval.is_nan());
    }

    #[test]
    fn gaussian_kernel_path_works() {
        let x = bimodal(150, 2);
        let bw = npudensbw(
            &x,
            NpUDensBwOptions {
                ckertype: DensKernel::Gaussian,
                bwmethod: DensBwMethod::CvLs { grid_size: 40 },
            },
        )
        .unwrap();
        assert!(bw.bw > 0.0);
    }

    #[test]
    fn density_object_reports_likelihood() {
        let x = bimodal(200, 3);
        let bws = npudensbw(&x, NpUDensBwOptions::default()).unwrap();
        let dens = npudens(&bws, &x).unwrap();
        assert_eq!(dens.dens.len(), 200);
        assert!(dens.dens.iter().all(|&d| d >= 0.0));
        assert!(dens.log_likelihood.is_finite());
        // A wildly oversmoothed density fits the sample worse in likelihood.
        let wide = NpUDensBw { bw: 10.0, ..bws.clone() };
        let dens_wide = npudens(&wide, &x).unwrap();
        assert!(dens.log_likelihood > dens_wide.log_likelihood);
    }

    #[test]
    fn summary_mentions_method_and_kernel() {
        let x = bimodal(100, 4);
        let bw = npudensbw(&x, NpUDensBwOptions::default()).unwrap();
        let s = bw.summary();
        assert!(s.contains("Least Squares Cross-Validation"));
        assert!(s.contains("Epanechnikov"));
    }

    #[test]
    fn rejects_tiny_samples() {
        assert!(npudensbw(&[1.0], NpUDensBwOptions::default()).is_err());
    }
}
