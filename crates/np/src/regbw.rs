//! `npregbw` — bandwidth selection by numerical optimisation, R-np style.

use crate::objective::{cv_objective, cv_objective_parallel, DEGENERATE_PENALTY};
use kcv_core::error::{validate_sample, Error, Result};
use kcv_core::kernels::{Epanechnikov, Gaussian, Kernel, Uniform};
use kcv_core::select::numeric::nelder_mead_1d;
use kcv_core::util::min_max;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Regression type, as np's `regtype`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegType {
    /// Local constant (Nadaraya–Watson) — np's default `"lc"`.
    Lc,
    /// Local linear — np's `"ll"`.
    Ll,
}

/// Continuous kernel type, as np's `ckertype` (subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CKerType {
    /// The Epanechnikov kernel (the paper's choice).
    Epanechnikov,
    /// The Gaussian kernel (np's default).
    Gaussian,
    /// The Uniform kernel.
    Uniform,
}

/// Bandwidth-selection method, as np's `bwmethod`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BwMethod {
    /// Least-squares cross-validation (`"cv.ls"`), the paper's objective.
    CvLs,
}

/// Options for [`npregbw`], mirroring the R signature's relevant knobs.
#[derive(Debug, Clone)]
pub struct NpRegBwOptions {
    /// Regression type (default local constant, like np).
    pub regtype: RegType,
    /// Kernel (default Epanechnikov, matching the paper's experiments).
    pub ckertype: CKerType,
    /// Selection method.
    pub bwmethod: BwMethod,
    /// Number of random-restart optimisations (np's `nmulti`).
    pub nmulti: usize,
    /// Convergence tolerance (fraction of the search bracket).
    pub tol: f64,
    /// Iteration cap per restart (np's `itmax`).
    pub itmax: usize,
    /// Evaluate the CV objective across cores (the paper's Program 2).
    pub parallel: bool,
    /// Seed for the restart draws (np uses R's RNG state).
    pub seed: u64,
}

impl Default for NpRegBwOptions {
    fn default() -> Self {
        Self {
            regtype: RegType::Lc,
            ckertype: CKerType::Epanechnikov,
            bwmethod: BwMethod::CvLs,
            nmulti: 5,
            tol: 1e-6,
            itmax: 300,
            parallel: false,
            seed: 42,
        }
    }
}

/// The result object of [`npregbw`] — the analogue of R's `rbandwidth`.
#[derive(Debug, Clone)]
pub struct NpRegBw {
    /// The selected bandwidth.
    pub bw: f64,
    /// The objective value at the selected bandwidth.
    pub fval: f64,
    /// Objective value reached by each restart (inspecting these shows the
    /// multi-minimum sensitivity the paper criticises).
    pub restart_fvals: Vec<f64>,
    /// The bandwidth each restart converged to.
    pub restart_bws: Vec<f64>,
    /// Total objective evaluations spent.
    pub evaluations: usize,
    /// Options used.
    pub options: NpRegBwOptions,
    /// Sample size.
    pub n: usize,
}

impl NpRegBw {
    /// An np-style text summary.
    pub fn summary(&self) -> String {
        let kernel = match self.options.ckertype {
            CKerType::Epanechnikov => "Epanechnikov",
            CKerType::Gaussian => "Second-Order Gaussian",
            CKerType::Uniform => "Uniform",
        };
        let regtype = match self.options.regtype {
            RegType::Lc => "Local-Constant",
            RegType::Ll => "Local-Linear",
        };
        format!(
            "Regression Data ({} observations, 1 variable(s)):\n\n\
             Bandwidth Selection Method: Least Squares Cross-Validation\n\
             Formula: y ~ x\n\
             Bandwidth Type: Fixed\n\
             Objective Function Value: {:.6e} (achieved on multistart {} of {})\n\n\
             Exp. Var. Name: x  Bandwidth: {:.6}\n\n\
             Continuous Kernel Type: {kernel}\n\
             Regression Type: {regtype}\n\
             No. Continuous Explanatory Vars.: 1\n",
            self.n,
            self.fval,
            self.restart_fvals
                .iter()
                .position(|&f| f == self.fval)
                .map_or(1, |i| i + 1),
            self.restart_fvals.len(),
            self.bw,
        )
    }
}

fn objective_at<K: Kernel + Clone + Sync>(
    x: &[f64],
    y: &[f64],
    h: f64,
    kernel: &K,
    local_linear: bool,
    parallel: bool,
) -> f64 {
    if parallel {
        cv_objective_parallel(x, y, h, kernel, local_linear)
    } else {
        cv_objective(x, y, h, kernel, local_linear)
    }
}

/// Selects a bandwidth by numerically minimising the least-squares CV
/// objective — the algorithm of the paper's Programs 1 (sequential) and 2
/// (`parallel = true`).
pub fn npregbw(x: &[f64], y: &[f64], options: NpRegBwOptions) -> Result<NpRegBw> {
    let n = validate_sample(x, y, 2)?;
    let (lo_x, hi_x) = min_max(x).expect("validated non-empty");
    let domain = hi_x - lo_x;
    if domain <= 0.0 {
        return Err(Error::DegenerateDomain);
    }
    let (lo, hi) = (domain / 1000.0, domain);
    let local_linear = options.regtype == RegType::Ll;

    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut evaluations = 0usize;
    let mut restart_fvals = Vec::with_capacity(options.nmulti.max(1));
    let mut restart_bws = Vec::with_capacity(options.nmulti.max(1));

    // Dispatch once on the kernel type; each arm runs the same multistart.
    // Like np, the search is over the *log* bandwidth: h is a scale
    // parameter, log-space makes the objective better conditioned and keeps
    // the optimiser from stalling against the h > 0 boundary.
    let (log_lo, log_hi) = (lo.ln(), hi.ln());
    macro_rules! run_with {
        ($kernel:expr) => {{
            let kernel = $kernel;
            for _ in 0..options.nmulti.max(1) {
                let t: f64 = rng.random();
                let t0 = log_lo + t * (log_hi - log_lo);
                let result = nelder_mead_1d(
                    |log_h| {
                        evaluations += 1;
                        objective_at(x, y, log_h.exp(), &kernel, local_linear, options.parallel)
                    },
                    t0,
                    (log_hi - log_lo) * 0.1,
                    log_lo,
                    log_hi,
                    options.tol * (log_hi - log_lo),
                    options.itmax,
                );
                restart_fvals.push(result.fx);
                restart_bws.push(result.x.exp());
            }
        }};
    }
    match options.ckertype {
        CKerType::Epanechnikov => run_with!(Epanechnikov),
        CKerType::Gaussian => run_with!(Gaussian),
        CKerType::Uniform => run_with!(Uniform),
    }

    let best = restart_fvals
        .iter()
        .copied()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("nmulti >= 1");
    if best.1 >= DEGENERATE_PENALTY {
        return Err(Error::NoValidBandwidth);
    }
    Ok(NpRegBw {
        bw: restart_bws[best.0],
        fval: best.1,
        restart_fvals,
        restart_bws,
        evaluations,
        options,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcv_core::select::{BandwidthSelector, GridSpec, SortedGridSearch};
    use kcv_core::util::SplitMix64;

    fn paper_dgp(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.next_f64())
            .collect();
        (x, y)
    }

    #[test]
    fn finds_bandwidth_near_grid_search_optimum() {
        let (x, y) = paper_dgp(150, 1);
        let bw = npregbw(&x, &y, NpRegBwOptions::default()).unwrap();
        let grid = SortedGridSearch::new(Epanechnikov, GridSpec::PaperDefault(200))
            .select(&x, &y)
            .unwrap();
        assert!(
            (bw.bw - grid.bandwidth).abs() < 0.1,
            "np {} vs grid {}",
            bw.bw,
            grid.bandwidth
        );
        assert!(bw.evaluations > 0);
    }

    #[test]
    fn parallel_option_reproduces_sequential_answer() {
        let (x, y) = paper_dgp(100, 2);
        let seq = npregbw(&x, &y, NpRegBwOptions::default()).unwrap();
        let par = npregbw(&x, &y, NpRegBwOptions { parallel: true, ..Default::default() })
            .unwrap();
        assert!((seq.bw - par.bw).abs() < 1e-9);
        assert!((seq.fval - par.fval).abs() < 1e-12);
    }

    #[test]
    fn restarts_can_disagree_revealing_local_minima() {
        // On a small noisy sample the CV surface is rugged; with many
        // restarts the per-restart optima should not all coincide (this is
        // precisely the instability the paper's abstract cites).
        let (x, y) = paper_dgp(40, 3);
        let bw = npregbw(
            &x,
            &y,
            NpRegBwOptions { nmulti: 12, seed: 9, ..Default::default() },
        )
        .unwrap();
        let spread = bw
            .restart_bws
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &b| (lo.min(b), hi.max(b)));
        assert!(
            spread.1 - spread.0 > 1e-6,
            "restarts all converged identically: {:?}",
            bw.restart_bws
        );
        // The reported optimum is the best of the restarts.
        for &f in &bw.restart_fvals {
            assert!(bw.fval <= f + 1e-15);
        }
    }

    #[test]
    fn gaussian_and_uniform_kernels_work() {
        let (x, y) = paper_dgp(80, 4);
        for k in [CKerType::Gaussian, CKerType::Uniform] {
            let bw = npregbw(&x, &y, NpRegBwOptions { ckertype: k, ..Default::default() })
                .unwrap();
            assert!(bw.bw > 0.0 && bw.bw <= 1.0);
        }
    }

    #[test]
    fn local_linear_regtype_works() {
        let (x, y) = paper_dgp(80, 5);
        let bw = npregbw(
            &x,
            &y,
            NpRegBwOptions { regtype: RegType::Ll, ..Default::default() },
        )
        .unwrap();
        assert!(bw.bw > 0.0);
    }

    #[test]
    fn summary_mentions_key_fields() {
        let (x, y) = paper_dgp(60, 6);
        let bw = npregbw(&x, &y, NpRegBwOptions::default()).unwrap();
        let s = bw.summary();
        assert!(s.contains("Least Squares Cross-Validation"));
        assert!(s.contains("Epanechnikov"));
        assert!(s.contains("Local-Constant"));
        assert!(s.contains("Bandwidth:"));
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(npregbw(&[1.0, 1.0], &[1.0, 2.0], NpRegBwOptions::default()).is_err());
        assert!(npregbw(&[1.0], &[1.0], NpRegBwOptions::default()).is_err());
    }
}
