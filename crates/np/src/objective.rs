//! The least-squares CV objective, evaluated the way the R baselines do:
//! the full `O(n²)` double sum per candidate bandwidth, with a large
//! penalty when every observation is trimmed (np's behaviour on degenerate
//! bandwidths).

use kcv_core::estimate::{LocalLinear, NadarayaWatson, RegressionEstimator};
use kcv_core::kernels::Kernel;
use rayon::prelude::*;

/// Penalty for bandwidths at which no observation has a defined
/// leave-one-out fit (mirrors np's `.Machine$double.xmax`-style penalty).
pub const DEGENERATE_PENALTY: f64 = f64::MAX / 4.0;

/// Local-constant or local-linear objective, sequential.
pub fn cv_objective<K: Kernel + Clone>(
    x: &[f64],
    y: &[f64],
    h: f64,
    kernel: &K,
    local_linear: bool,
) -> f64 {
    let n = x.len();
    let mut sum = 0.0;
    let mut included = 0usize;
    if local_linear {
        let Ok(fit) = LocalLinear::new(x, y, kernel.clone(), h) else {
            return DEGENERATE_PENALTY;
        };
        for (i, &yi) in y.iter().enumerate() {
            if let Some(g) = fit.loo_predict(i) {
                let r = yi - g;
                sum += r * r;
                included += 1;
            }
        }
    } else {
        let Ok(fit) = NadarayaWatson::new(x, y, kernel.clone(), h) else {
            return DEGENERATE_PENALTY;
        };
        for (i, &yi) in y.iter().enumerate() {
            if let Some(g) = fit.loo_predict(i) {
                let r = yi - g;
                sum += r * r;
                included += 1;
            }
        }
    }
    if included == 0 {
        DEGENERATE_PENALTY
    } else {
        sum / n as f64
    }
}

/// The same objective with the per-observation leave-one-out fits computed
/// across cores — the paper's "Multicore R" Program 2.
pub fn cv_objective_parallel<K: Kernel + Clone + Sync>(
    x: &[f64],
    y: &[f64],
    h: f64,
    kernel: &K,
    local_linear: bool,
) -> f64 {
    let n = x.len();
    let fold = |residuals: Vec<Option<f64>>| -> f64 {
        let mut sum = 0.0;
        let mut included = 0usize;
        for r in residuals.into_iter().flatten() {
            sum += r * r;
            included += 1;
        }
        if included == 0 {
            DEGENERATE_PENALTY
        } else {
            sum / n as f64
        }
    };
    if local_linear {
        let Ok(fit) = LocalLinear::new(x, y, kernel.clone(), h) else {
            return DEGENERATE_PENALTY;
        };
        fold(
            (0..n)
                .into_par_iter()
                .map(|i| fit.loo_predict(i).map(|g| y[i] - g))
                .collect(),
        )
    } else {
        let Ok(fit) = NadarayaWatson::new(x, y, kernel.clone(), h) else {
            return DEGENERATE_PENALTY;
        };
        fold(
            (0..n)
                .into_par_iter()
                .map(|i| fit.loo_predict(i).map(|g| y[i] - g))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcv_core::cv::cv_score_single;
    use kcv_core::kernels::{Epanechnikov, Gaussian};
    use kcv_core::util::SplitMix64;

    fn paper_dgp(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * rng.next_f64())
            .collect();
        (x, y)
    }

    #[test]
    fn matches_core_objective_for_local_constant() {
        let (x, y) = paper_dgp(80, 1);
        for &h in &[0.05, 0.1, 0.3, 0.9] {
            let ours = cv_objective(&x, &y, h, &Epanechnikov, false);
            let (core, _) = cv_score_single(&x, &y, h, &Epanechnikov);
            assert!((ours - core).abs() < 1e-12, "h={h}: {ours} vs {core}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let (x, y) = paper_dgp(120, 2);
        for ll in [false, true] {
            for &h in &[0.05, 0.2, 0.6] {
                let s = cv_objective(&x, &y, h, &Gaussian, ll);
                let p = cv_objective_parallel(&x, &y, h, &Gaussian, ll);
                assert!(
                    (s - p).abs() <= 1e-12 * s.abs().max(1.0),
                    "ll={ll} h={h}: {s} vs {p}"
                );
            }
        }
    }

    #[test]
    fn degenerate_bandwidth_penalised() {
        let x = [0.0, 1.0, 2.0];
        let y = [1.0, 2.0, 3.0];
        assert_eq!(cv_objective(&x, &y, 0.1, &Epanechnikov, false), DEGENERATE_PENALTY);
    }

    #[test]
    fn local_linear_objective_prefers_reasonable_bandwidths() {
        let (x, y) = paper_dgp(150, 3);
        let mid = cv_objective(&x, &y, 0.1, &Epanechnikov, true);
        let wide = cv_objective(&x, &y, 1.0, &Epanechnikov, true);
        // Local-linear handles curvature better than NW but still prefers
        // a sub-domain bandwidth on this strongly curved DGP.
        assert!(mid < wide, "mid {mid} vs wide {wide}");
    }
}
