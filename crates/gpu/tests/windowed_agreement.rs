//! Cross-implementation agreement: the windowed GPU program against the
//! `f64` CPU prefix-moment reference (`cv_profile_prefix`), across every
//! polynomial kernel the device supports, plus the exact boundary-tie
//! lattice from `crates/core/tests/boundary_ties.rs`.
//!
//! Tolerances, and why they are what they are: the windowed device program
//! runs in f32 (compensated-pair tables, f32 assembly), the CPU reference
//! in f64. Quantising `x`, `y`, and the bandwidths to f32 alone perturbs a
//! squared-residual score at the ~1e-6 relative level, and the per-cell
//! recombination amplifies the window-moment rounding error by `h^{−j}` at
//! monomial degree `j` — so score agreement is asserted at a degree-scaled
//! relative tolerance (2e-3 up to quadratic; 5e-2 for cubic/quartic, whose
//! `h^{−4}` factor reaches ~10⁵ at the smallest paper-default bandwidths
//! and costs the pair scheme ~4 digits), never exactly. Beyond degree 4
//! that amplification defeats the pair-f32 scheme outright: triweight's
//! `h^{−6}` factor reaches ~3·10⁷ there, turning the ~2⁻²⁴ pair residual
//! into an O(1)
//! score error — those kernels are correct only under the true-f64 table
//! mode (`GpuConfig::windowed_f64`), which this suite uses for them (and
//! which costs the same 8 device bytes per entry). Argmins of two
//! different-precision programs may legitimately flip between near-tied
//! neighbouring grid points, so bandwidth agreement is asserted within one
//! grid step, and the *quality* of the selection is pinned separately: the
//! CPU profile's score at the GPU's chosen bandwidth must be within the
//! same tolerance of the CPU minimum.

use kcv_core::cv::cv_profile_prefix;
use kcv_core::grid::BandwidthGrid;
use kcv_core::kernels::{polynomial_kernels, Epanechnikov, Uniform};
use kcv_data::{Dgp, PaperDgp};
use kcv_gpu::{select_bandwidth_gpu_windowed_kernel, GpuConfig, GpuKernel};
use proptest::prelude::*;

/// Per-degree precision mode and relative score tolerance (see the module
/// docs): pair-f32 tables hold through degree 4; degree 5+ requires the
/// true-f64 table mode, where only the f32 input quantisation remains.
fn mode_for_degree(deg: usize) -> (bool, f64) {
    match deg {
        0..=2 => (false, 2e-3),
        3..=4 => (false, 5e-2),
        _ => (true, 1e-4),
    }
}

fn rel_close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1e-6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn prop_windowed_gpu_agrees_with_cpu_prefix_for_every_kernel(
        seed in 0u64..10_000,
        n in 30usize..120,
        k in 3usize..20,
    ) {
        let s = PaperDgp.sample(n, seed);
        let grid = BandwidthGrid::paper_default(&s.x, k).unwrap();
        let step = grid.step();
        for kernel in polynomial_kernels() {
            let deg = kernel.coeffs().len() - 1;
            let (needs_f64_tables, tol) = mode_for_degree(deg);
            let config = GpuConfig::default().with_windowed_f64(needs_f64_tables);
            let cpu = cv_profile_prefix(&s.x, &s.y, &grid, &*kernel).unwrap();
            let cpu_opt = cpu.argmin().unwrap();
            let gpu = select_bandwidth_gpu_windowed_kernel(
                &s.x, &s.y, &grid, &config, &GpuKernel::from_core(&*kernel),
            )
            .unwrap();

            // One grid step of slack for near-tied minima, plus the f32
            // quantisation of the reported bandwidth itself (~h·2⁻²³).
            prop_assert!(
                (gpu.bandwidth - cpu_opt.bandwidth).abs() <= step + 1e-6,
                "kernel {} (deg {deg}): windowed selected {} vs CPU {} (step {step})",
                kernel.name(), gpu.bandwidth, cpu_opt.bandwidth
            );
            prop_assert!(
                rel_close(gpu.score, cpu_opt.score, tol),
                "kernel {} (deg {deg}): min score {} vs CPU {}",
                kernel.name(), gpu.score, cpu_opt.score
            );
            // The GPU's pick must be near-optimal on the f64 profile, not
            // just nearby on the grid. The device reports the f32-quantised
            // bandwidth, so map it back to the nearest f64 grid point.
            let gpu_idx = grid
                .values()
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    (*a - gpu.bandwidth).abs().total_cmp(&(*b - gpu.bandwidth).abs())
                })
                .map(|(i, _)| i)
                .unwrap();
            prop_assert!(
                cpu.scores[gpu_idx] <= cpu_opt.score + tol * cpu_opt.score.abs().max(1e-6),
                "kernel {} (deg {deg}): CPU rates the GPU pick {} vs its own min {}",
                kernel.name(), cpu.scores[gpu_idx], cpu_opt.score
            );
        }
    }

    #[test]
    fn prop_f64_table_mode_tracks_the_cpu_reference_tighter(
        seed in 0u64..10_000,
        n in 30usize..100,
        k in 3usize..15,
    ) {
        // With true-f64 tables and f64 assembly the only remaining error is
        // the f32 quantisation of the inputs and bandwidths: 1e-4 relative
        // holds at every grid point, an order tighter than the pair mode's
        // quadratic-kernel bound.
        let s = PaperDgp.sample(n, seed);
        let grid = BandwidthGrid::paper_default(&s.x, k).unwrap();
        let config = GpuConfig::default().with_windowed_f64(true);
        let cpu = cv_profile_prefix(&s.x, &s.y, &grid, &Epanechnikov).unwrap();
        let gpu = select_bandwidth_gpu_windowed_kernel(
            &s.x, &s.y, &grid, &config, &GpuKernel::epanechnikov(),
        )
        .unwrap();
        for (m, (&ours, &theirs)) in gpu.scores.iter().zip(&cpu.scores).enumerate() {
            prop_assert!(
                rel_close(f64::from(ours), theirs, 1e-4),
                "h={}: f64-mode windowed {ours} vs CPU {theirs}",
                grid.values()[m]
            );
        }
    }
}

/// The exact boundary-tie lattice of `crates/core/tests/boundary_ties.rs`:
/// spacing 0.25 on a power-of-two grid, so `d/h` and every prefix moment
/// are exact binary fractions in f32 as well as f64, and a support-boundary
/// tie (`|x_i − x_l| == h·r` exactly) is real rather than float noise.
fn lattice() -> (Vec<f64>, Vec<f64>) {
    (vec![0.0, 0.25, 0.5, 0.75, 1.0], vec![1.0, 2.0, -1.0, 0.5, 3.0])
}

#[test]
fn windowed_gpu_classifies_boundary_ties_like_the_cpu_strategies() {
    let (x, y) = lattice();
    let config = GpuConfig::default();
    let grid = BandwidthGrid::from_values(vec![0.25, 0.5]).unwrap();

    // Uniform: weight 0.5 > 0 exactly on the boundary — the tied
    // neighbours are real contributors, and the device predicate
    // (d·inv_h ≤ r on exact binary fractions) must include them. Scores
    // match the CPU up to f32/f64 division rounding (e.g. Σy/3), so the
    // comparison is 1e-6-relative, not bitwise.
    let cpu = cv_profile_prefix(&x, &y, &grid, &Uniform).unwrap();
    let gpu =
        select_bandwidth_gpu_windowed_kernel(&x, &y, &grid, &config, &GpuKernel::uniform())
            .unwrap();
    assert_eq!(cpu.included, vec![5, 5]);
    for (m, (&ours, &theirs)) in gpu.scores.iter().zip(&cpu.scores).enumerate() {
        assert!(
            rel_close(f64::from(ours), theirs, 1e-6),
            "uniform h={}: windowed {ours} vs CPU {theirs}",
            grid.values()[m]
        );
    }

    // Epanechnikov: weight exactly 0 on the boundary. At h = 0.25 every
    // in-support neighbour is a boundary tie, all denominators collapse to
    // exactly 0.0 (the lattice keeps the f32 arithmetic exact), and the
    // device must exclude everyone — its score is exactly 0.0, like every
    // CPU strategy's.
    let cpu = cv_profile_prefix(&x, &y, &grid, &Epanechnikov).unwrap();
    let gpu = select_bandwidth_gpu_windowed_kernel(
        &x, &y, &grid, &config, &GpuKernel::epanechnikov(),
    )
    .unwrap();
    assert_eq!(cpu.included, vec![0, 5]);
    assert_eq!(cpu.scores[0], 0.0);
    assert_eq!(gpu.scores[0], 0.0, "a strict or perturbed predicate leaks boundary weight");
    assert!(
        rel_close(f64::from(gpu.scores[1]), cpu.scores[1], 1e-6),
        "epanechnikov h=0.5: windowed {} vs CPU {}",
        gpu.scores[1],
        cpu.scores[1]
    );
}

#[test]
fn windowed_gpu_agrees_at_radius_spanning_bandwidths() {
    // h = 0.125: adjacent pairs sit at d/h = 2, outside the radius — nobody
    // has a neighbour and both bandwidths' scores are exactly 0.0. h = 1.0:
    // everything is in support. The degenerate extremes must classify
    // identically on the device too.
    let (x, y) = lattice();
    let config = GpuConfig::default();
    let grid = BandwidthGrid::from_values(vec![0.125, 1.0]).unwrap();
    for (core_kernel, device_kernel) in [
        (cv_profile_prefix(&x, &y, &grid, &Uniform).unwrap(), GpuKernel::uniform()),
        (cv_profile_prefix(&x, &y, &grid, &Epanechnikov).unwrap(), GpuKernel::epanechnikov()),
    ] {
        let gpu =
            select_bandwidth_gpu_windowed_kernel(&x, &y, &grid, &config, &device_kernel)
                .unwrap();
        assert_eq!(core_kernel.included[0], 0);
        assert_eq!(core_kernel.included[1], 5);
        assert_eq!(gpu.scores[0], 0.0, "{}: empty support must score 0", device_kernel.name);
        assert!(
            rel_close(f64::from(gpu.scores[1]), core_kernel.scores[1], 1e-6),
            "{} h=1.0: windowed {} vs CPU {}",
            device_kernel.name,
            gpu.scores[1],
            core_kernel.scores[1]
        );
    }
}
