//! Configuration of the GPU pipeline.

use kcv_gpu_sim::{CostModel, DeviceSpec};

/// Configuration for the GPU bandwidth-selection program.
#[derive(Debug, Clone)]
pub struct GpuConfig {
    /// The simulated device (default: the paper's Tesla S10).
    pub spec: DeviceSpec,
    /// The cycle cost model.
    pub cost: CostModel,
    /// Threads per block for the main kernel. The paper reports the fastest
    /// performance at 512, the device maximum.
    pub threads_per_block: usize,
    /// Thread count for the reduction block (power of two ≤ block max).
    pub reduction_threads: usize,
    /// Ablation switch: store the squared residuals observation-major
    /// (i.e. *without* the paper's §IV-B index switch), making the residual
    /// stores and reduction loads strided instead of coalesced. Results are
    /// identical; only the simulated memory cost changes.
    pub obs_major_residuals: bool,
    /// Precision of the windowed pipeline's device-resident prefix-moment
    /// tables ([`crate::select_bandwidth_gpu_windowed`]). `false` (default,
    /// period-authentic): each table entry is a compensated `(hi, lo)` f32
    /// pair and the per-cell assembly runs in f32. `true`: the tables are
    /// stored as true f64 and the assembly accumulates in f64 — the *same*
    /// 8 bytes per entry either way, so the memory footprint and the gate
    /// on it are unaffected; only the arithmetic (and the Tesla-era
    /// authenticity) changes. Ignored by the classic n×n pipeline.
    pub windowed_f64: bool,
}

impl Default for GpuConfig {
    fn default() -> Self {
        let spec = DeviceSpec::tesla_s10();
        Self {
            threads_per_block: spec.max_threads_per_block,
            reduction_threads: spec.max_threads_per_block,
            cost: CostModel::default(),
            obs_major_residuals: false,
            windowed_f64: false,
            spec,
        }
    }
}

impl GpuConfig {
    /// Configuration targeting the modern-device preset.
    pub fn modern() -> Self {
        let spec = DeviceSpec::modern();
        Self {
            threads_per_block: 512,
            reduction_threads: 512,
            cost: CostModel::default(),
            obs_major_residuals: false,
            windowed_f64: false,
            spec,
        }
    }

    /// Overrides the main-kernel block size.
    pub fn with_threads_per_block(mut self, t: usize) -> Self {
        self.threads_per_block = t;
        self
    }

    /// Switches the windowed pipeline's device tables to true f64 storage
    /// and accumulation (same device bytes; see [`GpuConfig::windowed_f64`]).
    pub fn with_windowed_f64(mut self, on: bool) -> Self {
        self.windowed_f64 = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = GpuConfig::default();
        assert_eq!(c.threads_per_block, 512);
        assert_eq!(c.reduction_threads, 512);
        assert_eq!(c.spec.total_cores(), 240);
    }

    #[test]
    fn builders_apply() {
        let c = GpuConfig::default().with_threads_per_block(128);
        assert_eq!(c.threads_per_block, 128);
        assert!(GpuConfig::modern().spec.global_mem_bytes > GpuConfig::default().spec.global_mem_bytes);
    }
}
