//! Multi-device execution — the paper's testbed actually had **two** Tesla
//! S10s ("two Tesla S10 GPUs, each with 240 streaming cores and 4 GB of
//! device-specific GPU memory", §IV-C) but its program used one. This
//! module is the natural extension: shard the observations across `D`
//! devices.
//!
//! Each device receives the full `(x, y)` vectors (they are small) and the
//! whole constant-memory bandwidth grid, but only its shard's rows of the
//! big matrices: thread `j` of device `d` handles observation
//! `offset_d + j`. Per-bandwidth partial sums of squared residuals are
//! reduced on each device and combined on the host — which both
//!
//! 1. cuts device time (shards run concurrently), and
//! 2. **raises the paper's memory wall**: the dominant `2·n_local·n` f32
//!    matrices shrink per device, so two 4 GB cards reach ~√2× the sample
//!    size one card can.

use crate::config::GpuConfig;
use crate::error::Result;
use crate::gpu_kernel_type::GpuKernel;
use crate::kernel::{main_kernel, MainWorkspace};
use crate::windowed::{windowed_kernel, TableView, WindowedTables};
use kcv_core::error::validate_sample;
use kcv_core::grid::BandwidthGrid;
use kcv_gpu_sim::{
    launch_independent_map, min_payload_reduction, sum_reduction, ConstantMemory, LaunchConfig,
    MemoryPool, ThreadCounters,
};
use std::time::Instant;

/// Result of a multi-device run.
#[derive(Debug, Clone)]
pub struct MultiDeviceRun {
    /// The selected bandwidth.
    pub bandwidth: f64,
    /// Its CV score.
    pub score: f64,
    /// Per-grid-point CV scores.
    pub scores: Vec<f32>,
    /// Number of devices used.
    pub devices: usize,
    /// Simulated seconds: the *maximum* over devices (they run
    /// concurrently) plus the shared reduction/transfer tail.
    pub total_simulated_seconds: f64,
    /// Peak device memory on the busiest device, bytes.
    pub peak_bytes_per_device: usize,
    /// Host→device bytes, summed over all devices — comparable to
    /// [`crate::PipelineReport::h2d_bytes`].
    pub h2d_bytes: u64,
    /// Device→host bytes, summed over all devices. Includes each device's
    /// `k`-value partial-sum readback (one f32 per bandwidth per device).
    pub d2h_bytes: u64,
    /// Simulated seconds the summed transfer bytes take at the device
    /// transfer bandwidth. Informational: shards transfer *concurrently*,
    /// so each device's own transfer time is already inside
    /// `total_simulated_seconds` — this field is what the same traffic
    /// would cost serialised through one link.
    pub transfer_seconds: f64,
    /// Host wall-clock seconds for the whole simulation.
    pub host_seconds: f64,
}

/// Runs the bandwidth search sharded over `devices` identical simulated
/// GPUs (each configured per `config`).
pub fn select_bandwidth_multi_gpu(
    x: &[f64],
    y: &[f64],
    grid: &BandwidthGrid,
    config: &GpuConfig,
    devices: usize,
) -> Result<MultiDeviceRun> {
    let kernel = GpuKernel::epanechnikov();
    let n = validate_sample(x, y, 2)?;
    let k = grid.len();
    let max_k = config.spec.max_constant_f32();
    if k > max_k {
        return Err(crate::error::GpuError::TooManyBandwidths { requested: k, max: max_k });
    }
    let devices = devices.clamp(1, n);
    let wall = Instant::now();
    let reduction_threads = config.reduction_threads.min(config.spec.max_threads_per_block);

    let x32: Vec<f32> = x.iter().map(|&v| v as f32).collect();
    let y32: Vec<f32> = y.iter().map(|&v| v as f32).collect();
    let h32: Vec<f32> = grid.values().iter().map(|&v| v as f32).collect();

    // Shard bounds: device d handles observations [starts[d], starts[d+1]).
    let base = n / devices;
    let extra = n % devices;
    let mut starts = Vec::with_capacity(devices + 1);
    let mut acc = 0usize;
    starts.push(0);
    for d in 0..devices {
        acc += base + usize::from(d < extra);
        starts.push(acc);
    }

    let mut device_seconds: Vec<f64> = Vec::with_capacity(devices);
    let mut peak_bytes = 0usize;
    let mut h2d_total = 0u64;
    let mut d2h_total = 0u64;
    // Per-bandwidth squared-residual totals, summed across devices.
    let mut sq_totals = vec![0.0f32; k];

    for d in 0..devices {
        let lo = starts[d];
        let hi = starts[d + 1];
        let n_local = hi - lo;
        if n_local == 0 {
            device_seconds.push(0.0);
            continue;
        }
        let pool = MemoryPool::for_device(&config.spec);
        let mut x_dev = pool.alloc::<f32>(n)?;
        let mut y_dev = pool.alloc::<f32>(n)?;
        let mut dist_mat = pool.alloc::<f32>(n_local * n)?;
        let mut y_mat = pool.alloc::<f32>(n_local * n)?;
        let mut num_mat = pool.alloc::<f32>(n_local * k)?;
        let mut den_mat = pool.alloc::<f32>(n_local * k)?;
        let mut sqres_mat = pool.alloc::<f32>(n_local * k)?;
        let mut partials_dev = pool.alloc::<f32>(k)?;
        x_dev.copy_from_host(&x32)?;
        y_dev.copy_from_host(&y32)?;
        let bandwidths = ConstantMemory::new(&config.spec, &h32)?;

        let (sqres_rows, report) = {
            let x_view = x_dev.as_slice();
            let y_view = y_dev.as_slice();
            let bw_view = bandwidths.as_slice();
            let workspaces: Vec<MainWorkspace<'_>> = dist_mat
                .as_mut_slice()
                .chunks_mut(n)
                .zip(y_mat.as_mut_slice().chunks_mut(n))
                .zip(num_mat.as_mut_slice().chunks_mut(k))
                .zip(den_mat.as_mut_slice().chunks_mut(k))
                .map(|(((dist, yrow), num), den)| MainWorkspace { dist, yrow, num, den })
                .collect();
            let coeffs = kernel.coeffs.as_slice();
            let radius = kernel.radius;
            launch_independent_map(
                &config.spec,
                &config.cost,
                LaunchConfig::new(
                    n_local,
                    config.threads_per_block.min(config.spec.max_threads_per_block),
                ),
                workspaces,
                // Thread tid of this device handles global observation lo + tid.
                |tid, ws, c| {
                    main_kernel(lo + tid, x_view, y_view, bw_view, coeffs, radius, true, ws, c)
                },
            )?
        };

        // Place the residuals bandwidth-major in the device matrix (the
        // same §IV-B layout as the single-device pipeline) and reduce each
        // bandwidth's contiguous row into the device partial-sum buffer.
        {
            let sqres = sqres_mat.as_mut_slice();
            for (j, row) in sqres_rows.iter().enumerate() {
                for (m, &v) in row.iter().enumerate() {
                    sqres[m * n_local + j] = v;
                }
            }
        }
        let mut partial_cycles = 0.0;
        {
            let sqres = sqres_mat.as_slice();
            let partials = partials_dev.as_mut_slice();
            for (m, slot) in partials.iter_mut().enumerate() {
                let (sum, rep) = sum_reduction(
                    &config.spec,
                    &config.cost,
                    reduction_threads,
                    &sqres[m * n_local..(m + 1) * n_local],
                )?;
                *slot = sum;
                partial_cycles += rep.simulated_cycles;
            }
        }
        // The k partial sums travel device→host for the cross-device
        // combine — a real, charged transfer (k·4 bytes per device).
        let mut partials_host = vec![0.0f32; k];
        partials_dev.copy_to_host(&mut partials_host)?;
        for (total, &p) in sq_totals.iter_mut().zip(&partials_host) {
            *total += p;
        }

        let transfer =
            (pool.h2d_bytes() + pool.d2h_bytes()) as f64 / config.spec.transfer_bytes_per_sec;
        device_seconds
            .push(report.simulated_seconds + partial_cycles / config.spec.clock_hz + transfer);
        peak_bytes = peak_bytes.max(pool.peak());
        h2d_total += pool.h2d_bytes();
        d2h_total += pool.d2h_bytes();
    }

    // Host-side combine + final min (charged to one device).
    let scores: Vec<f32> = sq_totals.iter().map(|&s| s / n as f32).collect();
    let mut tail_counters = ThreadCounters::default();
    let ((min_score, best_h), min_report) =
        min_payload_reduction(&config.spec, &config.cost, reduction_threads, &scores, &h32)?;
    tail_counters.absorb(&min_report.totals);
    let tail_seconds = min_report.simulated_cycles / config.spec.clock_hz;

    let busiest = device_seconds.iter().copied().fold(0.0f64, f64::max);
    Ok(MultiDeviceRun {
        bandwidth: best_h as f64,
        score: min_score as f64,
        scores,
        devices,
        total_simulated_seconds: busiest + tail_seconds,
        peak_bytes_per_device: peak_bytes,
        h2d_bytes: h2d_total,
        d2h_bytes: d2h_total,
        transfer_seconds: (h2d_total + d2h_total) as f64 / config.spec.transfer_bytes_per_sec,
        host_seconds: wall.elapsed().as_secs_f64(),
    })
}

/// Runs the *windowed* (O(n)-memory) program sharded over `devices`
/// simulated GPUs: device `d` answers the sorted observations
/// `[starts[d], starts[d+1])` against its own copy of the global prefix
/// tables, reduces its per-bandwidth partial sums on device, and ships the
/// `k` partials to the host for the cross-device combine.
///
/// Unlike the classic shard (where the dominant `2·n_local·n` matrices
/// shrink per device), every device here holds the **full** tables — they
/// are already `O(n·deg)` bytes, so sharding cuts *time*, not memory. The
/// memory wall is gone either way; this path exists so a saturated device
/// can split the per-cell work. The tables always use the compensated
/// `(hi, lo)` f32 pair representation (the single-device path's
/// [`GpuConfig::windowed_f64`] mode is for precision ablations there).
pub fn select_bandwidth_multi_gpu_windowed(
    x: &[f64],
    y: &[f64],
    grid: &BandwidthGrid,
    config: &GpuConfig,
    devices: usize,
) -> Result<MultiDeviceRun> {
    let kernel = GpuKernel::epanechnikov();
    kernel.validate()?;
    let n = validate_sample(x, y, 2)?;
    let k = grid.len();
    let max_k = config.spec.max_constant_f32();
    if k > max_k {
        return Err(crate::error::GpuError::TooManyBandwidths { requested: k, max: max_k });
    }
    let devices = devices.clamp(1, n);
    let wall = Instant::now();
    let deg = kernel.degree();
    let tpb = config.threads_per_block.min(config.spec.max_threads_per_block);
    let reduction_threads = config.reduction_threads.min(config.spec.max_threads_per_block);

    let tables = WindowedTables::build(x, y, deg);
    let h32: Vec<f32> = grid.values().iter().map(|&v| v as f32).collect();
    let table_len = (deg + 1) * (n + 1);
    let (px_hi_host, px_lo_host) = WindowedTables::split_pair(&tables.px);
    let (py_hi_host, py_lo_host) = WindowedTables::split_pair(&tables.py);

    // Shard bounds over *sorted* positions.
    let base = n / devices;
    let extra = n % devices;
    let mut starts = Vec::with_capacity(devices + 1);
    let mut acc = 0usize;
    starts.push(0);
    for d in 0..devices {
        acc += base + usize::from(d < extra);
        starts.push(acc);
    }

    let mut device_seconds: Vec<f64> = Vec::with_capacity(devices);
    let mut peak_bytes = 0usize;
    let mut h2d_total = 0u64;
    let mut d2h_total = 0u64;
    let mut sq_totals = vec![0.0f32; k];

    for d in 0..devices {
        let lo = starts[d];
        let n_local = starts[d + 1] - lo;
        if n_local == 0 {
            device_seconds.push(0.0);
            continue;
        }
        let num_blocks = n_local.div_ceil(tpb);
        let pool = MemoryPool::for_device(&config.spec);
        let mut xs_dev = pool.alloc::<f32>(n)?;
        let mut ys_dev = pool.alloc::<f32>(n)?;
        xs_dev.copy_from_host(&tables.xs32)?;
        ys_dev.copy_from_host(&tables.ys32)?;
        let (mut px_hi, mut px_lo, mut py_hi, mut py_lo) = (
            pool.alloc::<f32>(table_len)?,
            pool.alloc::<f32>(table_len)?,
            pool.alloc::<f32>(table_len)?,
            pool.alloc::<f32>(table_len)?,
        );
        px_hi.copy_from_host(&px_hi_host)?;
        px_lo.copy_from_host(&px_lo_host)?;
        py_hi.copy_from_host(&py_hi_host)?;
        py_lo.copy_from_host(&py_lo_host)?;
        let mut partials_dev = pool.alloc::<f32>(num_blocks * k)?;
        let mut sums_dev = pool.alloc::<f32>(k)?;
        let bandwidths = ConstantMemory::new(&config.spec, &h32)?;

        let mut resid_scratch = vec![0.0f32; n_local * k];
        let report = {
            let xs_view = xs_dev.as_slice();
            let ys_view = ys_dev.as_slice();
            let view = TableView::PairF32 {
                px_hi: px_hi.as_slice(),
                px_lo: px_lo.as_slice(),
                py_hi: py_hi.as_slice(),
                py_lo: py_lo.as_slice(),
            };
            let bw_view = bandwidths.as_slice();
            let workspaces: Vec<&mut [f32]> = resid_scratch.chunks_mut(k).collect();
            let coeffs = kernel.coeffs.as_slice();
            let radius = kernel.radius;
            let center = tables.center;
            let binom = tables.binom.as_slice();
            let (probes, report) = launch_independent_map(
                &config.spec,
                &config.cost,
                LaunchConfig::new(n_local, tpb),
                workspaces,
                // Thread tid of this device answers sorted position lo + tid.
                |tid, resid, c| {
                    let probes = windowed_kernel(
                        lo + tid,
                        xs_view,
                        ys_view,
                        &view,
                        center,
                        binom,
                        bw_view,
                        coeffs,
                        radius,
                        deg,
                        n,
                        resid,
                        c,
                    );
                    if tid % tpb == 0 {
                        c.global_coalesced(k as u64);
                    }
                    probes
                },
            )?;
            kcv_obs::add(kcv_obs::Counter::WindowQueries, (n_local * k) as u64);
            kcv_obs::add(kcv_obs::Counter::BinarySearchProbes, probes.iter().sum());
            report
        };

        // Block accumulation into the bandwidth-major partial matrix, then
        // one summation reduction per bandwidth into the k-slot buffer.
        {
            let partials = partials_dev.as_mut_slice();
            for (b, block) in resid_scratch.chunks(tpb * k).enumerate() {
                for row in block.chunks(k) {
                    for (m, &v) in row.iter().enumerate() {
                        partials[m * num_blocks + b] += v;
                    }
                }
            }
        }
        let mut partial_cycles = 0.0;
        {
            let partials = partials_dev.as_slice();
            let sums = sums_dev.as_mut_slice();
            for (m, slot) in sums.iter_mut().enumerate() {
                let (sum, rep) = sum_reduction(
                    &config.spec,
                    &config.cost,
                    reduction_threads,
                    &partials[m * num_blocks..(m + 1) * num_blocks],
                )?;
                *slot = sum;
                partial_cycles += rep.simulated_cycles;
            }
        }
        let mut partials_host = vec![0.0f32; k];
        sums_dev.copy_to_host(&mut partials_host)?;
        for (total, &p) in sq_totals.iter_mut().zip(&partials_host) {
            *total += p;
        }

        let transfer =
            (pool.h2d_bytes() + pool.d2h_bytes()) as f64 / config.spec.transfer_bytes_per_sec;
        device_seconds
            .push(report.simulated_seconds + partial_cycles / config.spec.clock_hz + transfer);
        peak_bytes = peak_bytes.max(pool.peak());
        h2d_total += pool.h2d_bytes();
        d2h_total += pool.d2h_bytes();
    }

    let scores: Vec<f32> = sq_totals.iter().map(|&s| s / n as f32).collect();
    let ((min_score, best_h), min_report) =
        min_payload_reduction(&config.spec, &config.cost, reduction_threads, &scores, &h32)?;
    let tail_seconds = min_report.simulated_cycles / config.spec.clock_hz;

    let busiest = device_seconds.iter().copied().fold(0.0f64, f64::max);
    Ok(MultiDeviceRun {
        bandwidth: best_h as f64,
        score: min_score as f64,
        scores,
        devices,
        total_simulated_seconds: busiest + tail_seconds,
        peak_bytes_per_device: peak_bytes,
        h2d_bytes: h2d_total,
        d2h_bytes: d2h_total,
        transfer_seconds: (h2d_total + d2h_total) as f64 / config.spec.transfer_bytes_per_sec,
        host_seconds: wall.elapsed().as_secs_f64(),
    })
}

/// Per-device memory requirement for a sharded run, in bytes.
pub fn required_bytes_per_device(n: usize, k: usize, devices: usize) -> usize {
    let devices = devices.max(1);
    let n_local = n.div_ceil(devices);
    let f = std::mem::size_of::<f32>();
    (2 * n + 2 * n_local * n + 3 * n_local * k) * f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{required_device_bytes, select_bandwidth_gpu};

    fn paper_data(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let x: Vec<f64> = (0..n).map(|_| next()).collect();
        let y: Vec<f64> = x.iter().map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * next()).collect();
        (x, y)
    }

    #[test]
    fn multi_device_matches_single_device_results() {
        let (x, y) = paper_data(257, 1);
        let grid = BandwidthGrid::paper_default(&x, 20).unwrap();
        let single = select_bandwidth_gpu(&x, &y, &grid, &GpuConfig::default()).unwrap();
        for devices in [1usize, 2, 3, 7] {
            let multi =
                select_bandwidth_multi_gpu(&x, &y, &grid, &GpuConfig::default(), devices)
                    .unwrap();
            assert_eq!(multi.devices, devices);
            assert_eq!(multi.bandwidth, single.bandwidth, "{devices} devices");
            for m in 0..grid.len() {
                // Partial sums are combined in a different order → tiny f32
                // reassociation drift is allowed.
                let a = multi.scores[m];
                let b = single.scores[m];
                assert!(
                    (a - b).abs() <= 1e-5 * b.abs().max(1e-6),
                    "{devices} devices, h index {m}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn two_devices_cut_simulated_time_once_the_device_is_saturated() {
        // Sharding pays off only when the single device already has more
        // blocks than SMs (otherwise idle SMs absorb the extra blocks).
        // Scale the device to 2 SMs so saturation happens at test size.
        let mut config = GpuConfig::default();
        config.spec.num_sms = 2;
        let (x, y) = paper_data(2_048, 2);
        let grid = BandwidthGrid::paper_default(&x, 20).unwrap();
        let one = select_bandwidth_multi_gpu(&x, &y, &grid, &config, 1).unwrap();
        let two = select_bandwidth_multi_gpu(&x, &y, &grid, &config, 2).unwrap();
        assert!(
            two.total_simulated_seconds < 0.7 * one.total_simulated_seconds,
            "2 devices: {} vs 1 device: {}",
            two.total_simulated_seconds,
            one.total_simulated_seconds
        );
        // On the full 30-SM Tesla at this n, blocks don't saturate the SMs,
        // so sharding is *not* expected to help — also worth pinning down.
        let one_full =
            select_bandwidth_multi_gpu(&x, &y, &grid, &GpuConfig::default(), 1).unwrap();
        let two_full =
            select_bandwidth_multi_gpu(&x, &y, &grid, &GpuConfig::default(), 2).unwrap();
        assert!(
            (two_full.total_simulated_seconds - one_full.total_simulated_seconds).abs()
                < 0.05 * one_full.total_simulated_seconds
        );
    }

    #[test]
    fn sharding_raises_the_memory_wall() {
        // One 4 GB device dies near n ≈ 23–24k; two reach past 30k.
        let four_gb = 4usize << 30;
        assert!(required_device_bytes(24_000, 50) > four_gb);
        assert!(required_bytes_per_device(24_000, 50, 2) < four_gb);
        assert!(required_bytes_per_device(32_000, 50, 2) < four_gb);
        assert!(required_bytes_per_device(34_000, 50, 2) > four_gb);
    }

    #[test]
    fn more_devices_than_observations_is_clamped() {
        let (x, y) = paper_data(5, 3);
        let grid = BandwidthGrid::paper_default(&x, 3).unwrap();
        let run = select_bandwidth_multi_gpu(&x, &y, &grid, &GpuConfig::default(), 64).unwrap();
        assert_eq!(run.devices, 5);
        assert!(run.bandwidth > 0.0);
    }

    #[test]
    fn multi_device_charges_every_transfer() {
        // Regression: each device's k-value partial-sum readback used to
        // happen through an uncharged host gather, and the run exposed no
        // traffic fields at all. H2D is x and y per device; D2H is the k
        // partial sums per device.
        let (x, y) = paper_data(120, 17);
        let grid = BandwidthGrid::paper_default(&x, 15).unwrap();
        for devices in [1usize, 2, 3] {
            let run =
                select_bandwidth_multi_gpu(&x, &y, &grid, &GpuConfig::default(), devices)
                    .unwrap();
            assert_eq!(run.h2d_bytes, (devices * 2 * 120 * 4) as u64, "{devices} devices");
            assert_eq!(run.d2h_bytes, (devices * 15 * 4) as u64, "{devices} devices");
            assert!(run.transfer_seconds > 0.0);
        }
    }

    #[test]
    fn multi_device_clamps_oversized_reduction_threads() {
        // Regression: the final min reduction used the configured thread
        // count unclamped — 1024 on a 512-max device errored out.
        let (x, y) = paper_data(90, 19);
        let grid = BandwidthGrid::paper_default(&x, 10).unwrap();
        let oversized = GpuConfig { reduction_threads: 1024, ..GpuConfig::default() };
        assert!(oversized.reduction_threads > oversized.spec.max_threads_per_block);
        let clamped = select_bandwidth_multi_gpu(&x, &y, &grid, &oversized, 2).unwrap();
        let default_run =
            select_bandwidth_multi_gpu(&x, &y, &grid, &GpuConfig::default(), 2).unwrap();
        assert_eq!(clamped.bandwidth, default_run.bandwidth);
        assert_eq!(clamped.scores, default_run.scores);
        // The windowed shard clamps identically.
        let w = select_bandwidth_multi_gpu_windowed(&x, &y, &grid, &oversized, 2).unwrap();
        assert!(w.bandwidth > 0.0);
    }

    #[test]
    fn windowed_sharding_matches_single_device_windowed() {
        let (x, y) = paper_data(257, 21);
        let grid = BandwidthGrid::paper_default(&x, 20).unwrap();
        let single =
            crate::windowed::select_bandwidth_gpu_windowed(&x, &y, &grid, &GpuConfig::default())
                .unwrap();
        for devices in [1usize, 2, 3, 7] {
            let multi = select_bandwidth_multi_gpu_windowed(
                &x,
                &y,
                &grid,
                &GpuConfig::default(),
                devices,
            )
            .unwrap();
            assert!(
                (multi.bandwidth - single.bandwidth).abs() <= grid.step() + 1e-9,
                "{devices} devices: {} vs {}",
                multi.bandwidth,
                single.bandwidth
            );
            for m in 0..grid.len() {
                let a = multi.scores[m];
                let b = single.scores[m];
                assert!(
                    (a - b).abs() <= 1e-5 * b.abs().max(1e-6),
                    "{devices} devices, h index {m}: {a} vs {b}"
                );
            }
            // Sharding does not shrink the windowed footprint (full tables
            // everywhere) — but it is O(n), nowhere near the classic shard.
            assert!(
                multi.peak_bytes_per_device
                    < required_bytes_per_device(257, 20, devices) / 4
            );
        }
    }
}
