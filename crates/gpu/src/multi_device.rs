//! Multi-device execution — the paper's testbed actually had **two** Tesla
//! S10s ("two Tesla S10 GPUs, each with 240 streaming cores and 4 GB of
//! device-specific GPU memory", §IV-C) but its program used one. This
//! module is the natural extension: shard the observations across `D`
//! devices.
//!
//! Each device receives the full `(x, y)` vectors (they are small) and the
//! whole constant-memory bandwidth grid, but only its shard's rows of the
//! big matrices: thread `j` of device `d` handles observation
//! `offset_d + j`. Per-bandwidth partial sums of squared residuals are
//! reduced on each device and combined on the host — which both
//!
//! 1. cuts device time (shards run concurrently), and
//! 2. **raises the paper's memory wall**: the dominant `2·n_local·n` f32
//!    matrices shrink per device, so two 4 GB cards reach ~√2× the sample
//!    size one card can.

use crate::config::GpuConfig;
use crate::error::Result;
use crate::gpu_kernel_type::GpuKernel;
use crate::kernel::{main_kernel, MainWorkspace};
use kcv_core::error::validate_sample;
use kcv_core::grid::BandwidthGrid;
use kcv_gpu_sim::{
    launch_independent, min_payload_reduction, sum_reduction, ConstantMemory, LaunchConfig,
    MemoryPool, ThreadCounters,
};
use std::time::Instant;

/// Result of a multi-device run.
#[derive(Debug, Clone)]
pub struct MultiDeviceRun {
    /// The selected bandwidth.
    pub bandwidth: f64,
    /// Its CV score.
    pub score: f64,
    /// Per-grid-point CV scores.
    pub scores: Vec<f32>,
    /// Number of devices used.
    pub devices: usize,
    /// Simulated seconds: the *maximum* over devices (they run
    /// concurrently) plus the shared reduction/transfer tail.
    pub total_simulated_seconds: f64,
    /// Peak device memory on the busiest device, bytes.
    pub peak_bytes_per_device: usize,
    /// Host wall-clock seconds for the whole simulation.
    pub host_seconds: f64,
}

/// Runs the bandwidth search sharded over `devices` identical simulated
/// GPUs (each configured per `config`).
pub fn select_bandwidth_multi_gpu(
    x: &[f64],
    y: &[f64],
    grid: &BandwidthGrid,
    config: &GpuConfig,
    devices: usize,
) -> Result<MultiDeviceRun> {
    let kernel = GpuKernel::epanechnikov();
    let n = validate_sample(x, y, 2)?;
    let k = grid.len();
    let max_k = config.spec.max_constant_f32();
    if k > max_k {
        return Err(crate::error::GpuError::TooManyBandwidths { requested: k, max: max_k });
    }
    let devices = devices.clamp(1, n);
    let wall = Instant::now();

    let x32: Vec<f32> = x.iter().map(|&v| v as f32).collect();
    let y32: Vec<f32> = y.iter().map(|&v| v as f32).collect();
    let h32: Vec<f32> = grid.values().iter().map(|&v| v as f32).collect();

    // Shard bounds: device d handles observations [starts[d], starts[d+1]).
    let base = n / devices;
    let extra = n % devices;
    let mut starts = Vec::with_capacity(devices + 1);
    let mut acc = 0usize;
    starts.push(0);
    for d in 0..devices {
        acc += base + usize::from(d < extra);
        starts.push(acc);
    }

    let mut device_seconds: Vec<f64> = Vec::with_capacity(devices);
    let mut peak_bytes = 0usize;
    // Per-bandwidth squared-residual totals, summed across devices.
    let mut sq_totals = vec![0.0f32; k];

    for d in 0..devices {
        let lo = starts[d];
        let hi = starts[d + 1];
        let n_local = hi - lo;
        if n_local == 0 {
            device_seconds.push(0.0);
            continue;
        }
        let pool = MemoryPool::for_device(&config.spec);
        let mut x_dev = pool.alloc::<f32>(n)?;
        let mut y_dev = pool.alloc::<f32>(n)?;
        let mut dist_mat = pool.alloc::<f32>(n_local * n)?;
        let mut y_mat = pool.alloc::<f32>(n_local * n)?;
        let mut num_mat = pool.alloc::<f32>(n_local * k)?;
        let mut den_mat = pool.alloc::<f32>(n_local * k)?;
        let mut sqres_mat = pool.alloc::<f32>(n_local * k)?;
        x_dev.copy_from_host(&x32)?;
        y_dev.copy_from_host(&y32)?;
        let bandwidths = ConstantMemory::new(&config.spec, &h32)?;

        let report = {
            let x_view = x_dev.as_slice();
            let y_view = y_dev.as_slice();
            let bw_view = bandwidths.as_slice();
            let workspaces: Vec<MainWorkspace<'_>> = dist_mat
                .as_mut_slice()
                .chunks_mut(n)
                .zip(y_mat.as_mut_slice().chunks_mut(n))
                .zip(num_mat.as_mut_slice().chunks_mut(k))
                .zip(den_mat.as_mut_slice().chunks_mut(k))
                .zip(sqres_mat.as_mut_slice().chunks_mut(k))
                .map(|((((dist, yrow), num), den), sqres)| MainWorkspace {
                    dist,
                    yrow,
                    num,
                    den,
                    sqres,
                })
                .collect();
            let coeffs = kernel.coeffs.as_slice();
            let radius = kernel.radius;
            launch_independent(
                &config.spec,
                &config.cost,
                LaunchConfig::new(
                    n_local,
                    config.threads_per_block.min(config.spec.max_threads_per_block),
                ),
                workspaces,
                // Thread tid of this device handles global observation lo + tid.
                |tid, ws, c| {
                    main_kernel(lo + tid, x_view, y_view, bw_view, coeffs, radius, true, ws, c)
                },
            )?
        };

        // Per-device partial reductions (bandwidth-major gather, coalesced).
        let mut partial_cycles = 0.0;
        {
            let obs_major = sqres_mat.as_slice();
            let mut row = vec![0.0f32; n_local];
            for (m, total) in sq_totals.iter_mut().enumerate() {
                for (j, slot) in row.iter_mut().enumerate() {
                    *slot = obs_major[j * k + m];
                }
                let (sum, rep) =
                    sum_reduction(&config.spec, &config.cost, config.reduction_threads, &row)?;
                *total += sum;
                partial_cycles += rep.simulated_cycles;
            }
        }
        let transfer =
            (pool.h2d_bytes() + pool.d2h_bytes()) as f64 / config.spec.transfer_bytes_per_sec;
        device_seconds
            .push(report.simulated_seconds + partial_cycles / config.spec.clock_hz + transfer);
        peak_bytes = peak_bytes.max(pool.peak());
    }

    // Host-side combine + final min (charged to one device).
    let scores: Vec<f32> = sq_totals.iter().map(|&s| s / n as f32).collect();
    let mut tail_counters = ThreadCounters::default();
    let ((min_score, best_h), min_report) = min_payload_reduction(
        &config.spec,
        &config.cost,
        config.reduction_threads,
        &scores,
        &h32,
    )?;
    tail_counters.absorb(&min_report.totals);
    let tail_seconds = min_report.simulated_cycles / config.spec.clock_hz;

    let busiest = device_seconds.iter().copied().fold(0.0f64, f64::max);
    Ok(MultiDeviceRun {
        bandwidth: best_h as f64,
        score: min_score as f64,
        scores,
        devices,
        total_simulated_seconds: busiest + tail_seconds,
        peak_bytes_per_device: peak_bytes,
        host_seconds: wall.elapsed().as_secs_f64(),
    })
}

/// Per-device memory requirement for a sharded run, in bytes.
pub fn required_bytes_per_device(n: usize, k: usize, devices: usize) -> usize {
    let devices = devices.max(1);
    let n_local = n.div_ceil(devices);
    let f = std::mem::size_of::<f32>();
    (2 * n + 2 * n_local * n + 3 * n_local * k) * f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{required_device_bytes, select_bandwidth_gpu};

    fn paper_data(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let x: Vec<f64> = (0..n).map(|_| next()).collect();
        let y: Vec<f64> = x.iter().map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * next()).collect();
        (x, y)
    }

    #[test]
    fn multi_device_matches_single_device_results() {
        let (x, y) = paper_data(257, 1);
        let grid = BandwidthGrid::paper_default(&x, 20).unwrap();
        let single = select_bandwidth_gpu(&x, &y, &grid, &GpuConfig::default()).unwrap();
        for devices in [1usize, 2, 3, 7] {
            let multi =
                select_bandwidth_multi_gpu(&x, &y, &grid, &GpuConfig::default(), devices)
                    .unwrap();
            assert_eq!(multi.devices, devices);
            assert_eq!(multi.bandwidth, single.bandwidth, "{devices} devices");
            for m in 0..grid.len() {
                // Partial sums are combined in a different order → tiny f32
                // reassociation drift is allowed.
                let a = multi.scores[m];
                let b = single.scores[m];
                assert!(
                    (a - b).abs() <= 1e-5 * b.abs().max(1e-6),
                    "{devices} devices, h index {m}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn two_devices_cut_simulated_time_once_the_device_is_saturated() {
        // Sharding pays off only when the single device already has more
        // blocks than SMs (otherwise idle SMs absorb the extra blocks).
        // Scale the device to 2 SMs so saturation happens at test size.
        let mut config = GpuConfig::default();
        config.spec.num_sms = 2;
        let (x, y) = paper_data(2_048, 2);
        let grid = BandwidthGrid::paper_default(&x, 20).unwrap();
        let one = select_bandwidth_multi_gpu(&x, &y, &grid, &config, 1).unwrap();
        let two = select_bandwidth_multi_gpu(&x, &y, &grid, &config, 2).unwrap();
        assert!(
            two.total_simulated_seconds < 0.7 * one.total_simulated_seconds,
            "2 devices: {} vs 1 device: {}",
            two.total_simulated_seconds,
            one.total_simulated_seconds
        );
        // On the full 30-SM Tesla at this n, blocks don't saturate the SMs,
        // so sharding is *not* expected to help — also worth pinning down.
        let one_full =
            select_bandwidth_multi_gpu(&x, &y, &grid, &GpuConfig::default(), 1).unwrap();
        let two_full =
            select_bandwidth_multi_gpu(&x, &y, &grid, &GpuConfig::default(), 2).unwrap();
        assert!(
            (two_full.total_simulated_seconds - one_full.total_simulated_seconds).abs()
                < 0.05 * one_full.total_simulated_seconds
        );
    }

    #[test]
    fn sharding_raises_the_memory_wall() {
        // One 4 GB device dies near n ≈ 23–24k; two reach past 30k.
        let four_gb = 4usize << 30;
        assert!(required_device_bytes(24_000, 50) > four_gb);
        assert!(required_bytes_per_device(24_000, 50, 2) < four_gb);
        assert!(required_bytes_per_device(32_000, 50, 2) < four_gb);
        assert!(required_bytes_per_device(34_000, 50, 2) > four_gb);
    }

    #[test]
    fn more_devices_than_observations_is_clamped() {
        let (x, y) = paper_data(5, 3);
        let grid = BandwidthGrid::paper_default(&x, 3).unwrap();
        let run = select_bandwidth_multi_gpu(&x, &y, &grid, &GpuConfig::default(), 64).unwrap();
        assert_eq!(run.devices, 5);
        assert!(run.bandwidth > 0.0);
    }
}
