//! The device kernels, ported from the paper's §IV-B description.
//!
//! All arithmetic is `f32`: "to reduce the demands for global memory and to
//! ensure compatibility with relatively early GPUs and NVCC drivers, only
//! single-precision floating point numbers are used in the computation."
//!
//! The weighting function is supplied as a polynomial coefficient vector
//! (see [`crate::GpuKernel`]); the paper's Epanechnikov case uses
//! `c = [0.75, 0, −0.75]`, which reduces the running power sums below to
//! exactly the paper's `Σ1, Σd², ΣY, ΣY·d²`.

use crate::gpu_kernel_type::MAX_DEVICE_DEGREE;
use kcv_gpu_sim::{device_sort_with_aux, ThreadCounters};

/// Per-thread workspace for the main kernel: thread `j`'s rows of the four
/// matrices whose layout *is* one row per thread (two `n×n`, two `n×k`).
/// The squared residuals are **not** part of the workspace: their device
/// layout is bandwidth-major (the §IV-B index switch), so thread `j`'s `k`
/// values are scattered across the residual matrix at stride `n` — the
/// kernel returns them and the launch driver places them (see
/// [`crate::pipeline`]), with the store cost charged here where the store
/// conceptually happens.
pub(crate) struct MainWorkspace<'a> {
    /// Row `j` of the `|X_i − X_j|` matrix.
    pub dist: &'a mut [f32],
    /// Row `j` of the co-sorted `Y_i` matrix.
    pub yrow: &'a mut [f32],
    /// Row `j` of the numerator-sum matrix.
    pub num: &'a mut [f32],
    /// Row `j` of the denominator-sum matrix.
    pub den: &'a mut [f32],
}

/// The main kernel: one thread per observation `j`.
///
/// 1. fill this thread's rows of the distance and response matrices;
/// 2. sort both by distance with the iterative device quicksort;
/// 3. sweep the constant-memory bandwidth grid in ascending order,
///    growing the running power sums `Σ d^p` and `Σ Y·d^p`;
/// 4. exclude observation `j` itself from the final sums (leave-one-out);
/// 5. emit the bandwidth-specific sums and the squared residual
///    `(Y_j − ĝ_{-j}(X_j))² · M(X_j)`.
///
/// Returns the thread's `k` squared residuals in bandwidth order; each
/// store into the device residual matrix is charged here (coalesced under
/// the §IV-B index switch, scattered in the obs-major ablation).
#[allow(clippy::too_many_arguments)]
pub(crate) fn main_kernel(
    j: usize,
    x: &[f32],
    y: &[f32],
    bandwidths: &[f32],
    coeffs: &[f32],
    radius: f32,
    sqres_coalesced: bool,
    ws: &mut MainWorkspace<'_>,
    c: &mut ThreadCounters,
) -> Vec<f32> {
    let n = x.len();
    let deg = coeffs.len() - 1;
    debug_assert!(deg <= MAX_DEVICE_DEGREE);
    let xj = x[j];
    let yj = y[j];
    c.global_read(2);

    // Fill row j of the |X_i − X_j| and Y_i matrices (self entry included;
    // it is subtracted from the sums below, per the leave-one-out design).
    for i in 0..n {
        ws.dist[i] = (x[i] - xj).abs();
        ws.yrow[i] = y[i];
        c.global_read(2);
        c.global_write(2);
        c.flop(2);
    }

    // Per-thread iterative quicksort over this thread's rows.
    device_sort_with_aux(ws.dist, ws.yrow, c);

    // Ascending bandwidth sweep with running power sums. The self
    // observation (d = 0) is always inside the support, so it is absorbed
    // at p = 0 and subtracted analytically: d = 0 contributes 1 to the
    // power-0 count and Y_j to the power-0 response sum, and nothing to any
    // higher power.
    let mut s = [0.0f32; MAX_DEVICE_DEGREE + 1];
    let mut sy = [0.0f32; MAX_DEVICE_DEGREE + 1];
    let mut sqres = vec![0.0f32; bandwidths.len()];
    let mut p = 0usize;
    for (m, &h) in bandwidths.iter().enumerate() {
        c.constant_read(1);
        let inv_h = 1.0 / h;
        c.flop(1);
        while p < n {
            c.global_read(1);
            c.flop(1);
            c.branch(1);
            if ws.dist[p] * inv_h > radius {
                break;
            }
            let d = ws.dist[p];
            let yl = ws.yrow[p];
            c.global_read(1);
            let mut pw = 1.0f32;
            for jj in 0..=deg {
                s[jj] += pw;
                sy[jj] += yl * pw;
                pw *= d;
            }
            c.flop(4 * (deg as u64 + 1));
            p += 1;
        }
        // Assemble N and D: Σ_j c_j·h^{-j}·S_j, with the self terms removed
        // from the power-0 sums.
        let mut hp = 1.0f32;
        let mut num = 0.0f32;
        let mut den = 0.0f32;
        for (jj, &cf) in coeffs.iter().enumerate() {
            let s_j = if jj == 0 { s[0] - 1.0 } else { s[jj] };
            let sy_j = if jj == 0 { sy[0] - yj } else { sy[jj] };
            num += cf * hp * sy_j;
            den += cf * hp * s_j;
            hp *= inv_h;
        }
        c.flop(7 * (deg as u64 + 1));
        ws.num[m] = num;
        ws.den[m] = den;
        c.global_write(2);
        c.branch(1);
        let sq = if den > 0.0 {
            let r = yj - num / den;
            c.flop(3);
            r * r
        } else {
            // M(X_j) = 0: the observation contributes nothing at this h.
            0.0
        };
        sqres[m] = sq;
        // §IV-B index switch: in the modelled (default) layout the residual
        // matrix is bandwidth-major, so at each m consecutive threads j
        // write consecutive addresses m·n + j — a coalesced store. In the
        // obs-major ablation the warp's stores are k apart — scattered.
        if sqres_coalesced {
            c.global_coalesced(1);
        } else {
            c.global_write(1);
        }
    }
    sqres
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu_kernel_type::GpuKernel;

    /// Direct f32 reference: leave-one-out polynomial-kernel CV residual²
    /// for one observation and one bandwidth.
    fn reference_sqres(j: usize, x: &[f32], y: &[f32], h: f32, kernel: &GpuKernel) -> f32 {
        let inv_h = 1.0 / h;
        let mut num = 0.0f32;
        let mut den = 0.0f32;
        for l in 0..x.len() {
            if l == j {
                continue;
            }
            let u = (x[j] - x[l]).abs() * inv_h;
            if u <= kernel.radius {
                let mut w = 0.0f32;
                let mut pw = 1.0f32;
                for &cf in &kernel.coeffs {
                    w += cf * pw;
                    pw *= u;
                }
                num += y[l] * w;
                den += w;
            }
        }
        if den > 0.0 {
            let r = y[j] - num / den;
            r * r
        } else {
            0.0
        }
    }

    fn run_main(j: usize, x: &[f32], y: &[f32], hs: &[f32], kernel: &GpuKernel) -> Vec<f32> {
        let n = x.len();
        let k = hs.len();
        let mut dist = vec![0.0f32; n];
        let mut yrow = vec![0.0f32; n];
        let mut num = vec![0.0f32; k];
        let mut den = vec![0.0f32; k];
        let mut ws = MainWorkspace {
            dist: &mut dist,
            yrow: &mut yrow,
            num: &mut num,
            den: &mut den,
        };
        let mut c = ThreadCounters::default();
        main_kernel(j, x, y, hs, &kernel.coeffs, kernel.radius, true, &mut ws, &mut c)
    }

    fn test_data() -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let x: Vec<f32> = (0..40).map(|i| ((i * 37) % 100) as f32 / 100.0).collect();
        let y: Vec<f32> = x.iter().map(|&v| 0.5 * v + 10.0 * v * v).collect();
        let hs: Vec<f32> = (1..=10).map(|m| m as f32 * 0.1).collect();
        (x, y, hs)
    }

    #[test]
    fn main_kernel_matches_direct_f32_reference_for_every_kernel() {
        let (x, y, hs) = test_data();
        for kernel in [
            GpuKernel::epanechnikov(),
            GpuKernel::uniform(),
            GpuKernel::triangular(),
            GpuKernel::quartic(),
            GpuKernel::triweight(),
        ] {
            for j in [0usize, 7, 39] {
                let sq = run_main(j, &x, &y, &hs, &kernel);
                for (m, &h) in hs.iter().enumerate() {
                    let expected = reference_sqres(j, &x, &y, h, &kernel);
                    let diff = (sq[m] - expected).abs();
                    assert!(
                        diff <= 2e-4 * expected.abs().max(1.0),
                        "{} j={j} h={h}: kernel {} vs reference {expected}",
                        kernel.name,
                        sq[m]
                    );
                }
            }
        }
    }

    #[test]
    fn self_exclusion_handles_duplicate_x_values() {
        // Two observations share x but not y: LOO at j=0 must use y[1] only.
        let x = [0.5f32, 0.5, 2.0];
        let y = [10.0f32, 20.0, 0.0];
        let sq = run_main(0, &x, &y, &[0.1], &GpuKernel::epanechnikov());
        // ĝ_{-0}(0.5) = 20 → residual -10 → 100.
        assert!((sq[0] - 100.0).abs() < 1e-3, "got {}", sq[0]);
    }

    #[test]
    fn isolated_observation_contributes_zero() {
        let x = [0.0f32, 10.0, 20.0];
        let y = [1.0f32, 2.0, 3.0];
        let sq = run_main(0, &x, &y, &[0.5, 1.0], &GpuKernel::epanechnikov());
        assert_eq!(sq, vec![0.0, 0.0]);
    }

    #[test]
    fn uniform_kernel_self_exclusion_with_constant_weight() {
        // The Uniform kernel gives the self observation weight 0.5, not a
        // weight that vanishes with d — the subtraction must still be exact.
        let x = [0.3f32, 0.35, 0.4];
        let y = [1.0f32, 2.0, 3.0];
        let sq = run_main(1, &x, &y, &[0.2], &GpuKernel::uniform());
        // ĝ_{-1}(0.35) = (1 + 3)/2 = 2 → residual 0.
        assert!(sq[0].abs() < 1e-6, "got {}", sq[0]);
    }

}
