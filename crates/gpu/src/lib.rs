//! # kcv-gpu — the paper's CUDA program on the simulated device
//!
//! A structure-faithful port of the CUDA optimal-bandwidth program of
//! Rohlfs & Zahran (IPPS 2017) onto the `kcv-gpu-sim` SPMD simulator:
//!
//! * the §IV-A allocation pattern — two `n×n` f32 matrices (distances and
//!   responses, one row per thread), the `n×k` sum matrices, and the
//!   bandwidth array in constant memory (≤ 2 048 values / 8 KB cache);
//! * the §IV-B sequence of operations — per-thread fill + iterative
//!   quicksort, ascending-bandwidth running sums, leave-one-out exclusion
//!   of the thread's own observation, the index switch to bandwidth-major
//!   layout, `k` Harris summation reductions, and a final min-with-payload
//!   reduction that leaves the optimal bandwidth in shared memory;
//! * single-precision arithmetic throughout, as the paper requires for
//!   early-device compatibility.
//!
//! The selected bandwidth is validated against the `f64` CPU reference in
//! `kcv-core` (see this crate's tests and the workspace integration tests),
//! mirroring the paper's §IV-C methodology of checking the sequential C and
//! CUDA programs against each other.
//!
//! Alongside the faithful port, [`select_bandwidth_gpu_windowed`] runs the
//! *windowed* program (module [`windowed`]' docs): the prefix-moment
//! strategy on the device, needing only `O(n·(deg+2) + k)` bytes instead of
//! the `O(n²)` matrices — it selects the same bandwidth while running far
//! past the paper's n ≈ 23 000 four-gigabyte wall.
//!
//! ```
//! use kcv_core::grid::BandwidthGrid;
//! use kcv_gpu::{select_bandwidth_gpu, GpuConfig};
//!
//! let x: Vec<f64> = (0..100).map(|i| i as f64 / 99.0).collect();
//! let y: Vec<f64> = x.iter().map(|&v| 0.5 * v + 10.0 * v * v).collect();
//! let grid = BandwidthGrid::paper_default(&x, 25).unwrap();
//! let run = select_bandwidth_gpu(&x, &y, &grid, &GpuConfig::default()).unwrap();
//! assert!(run.bandwidth > 0.0 && run.bandwidth <= 1.0);
//! // Cost accounting comes with every run.
//! assert!(run.report.total_simulated_seconds > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod config;
mod error;
mod gpu_kernel_type;
mod kernel;
mod multi_device;
mod pipeline;
pub mod windowed;

pub use config::GpuConfig;
pub use error::{GpuError, Result};
pub use gpu_kernel_type::{GpuKernel, MAX_DEVICE_DEGREE};
pub use multi_device::{
    required_bytes_per_device, select_bandwidth_multi_gpu,
    select_bandwidth_multi_gpu_windowed, MultiDeviceRun,
};
pub use pipeline::{
    required_device_bytes, select_bandwidth_gpu, select_bandwidth_gpu_kernel, GpuRun,
    PipelineReport,
};
pub use windowed::{
    required_device_bytes_windowed, select_bandwidth_gpu_windowed,
    select_bandwidth_gpu_windowed_kernel, WindowedReport, WindowedRun,
};
