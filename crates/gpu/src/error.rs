//! Error type for the GPU port.

use std::fmt;

/// Errors from the GPU bandwidth-selection pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum GpuError {
    /// A device-side failure (allocation, launch, constant memory, …).
    Sim(kcv_gpu_sim::SimError),
    /// An input-validation failure (delegated to the core crate's rules).
    Core(kcv_core::Error),
    /// The bandwidth grid exceeds the constant-memory ceiling (pre-checked
    /// so the caller gets a domain-level message before any allocation).
    TooManyBandwidths {
        /// Requested grid size.
        requested: usize,
        /// Maximum representable in the constant cache.
        max: usize,
    },
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::Sim(e) => write!(f, "device error: {e}"),
            GpuError::Core(e) => write!(f, "input error: {e}"),
            GpuError::TooManyBandwidths { requested, max } => write!(
                f,
                "{requested} bandwidths exceed the constant-cache limit of {max} \
                 (run the search repeatedly with progressively smaller ranges instead)"
            ),
        }
    }
}

impl std::error::Error for GpuError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GpuError::Sim(e) => Some(e),
            GpuError::Core(e) => Some(e),
            GpuError::TooManyBandwidths { .. } => None,
        }
    }
}

impl From<kcv_gpu_sim::SimError> for GpuError {
    fn from(e: kcv_gpu_sim::SimError) -> Self {
        GpuError::Sim(e)
    }
}

impl From<kcv_core::Error> for GpuError {
    fn from(e: kcv_core::Error) -> Self {
        GpuError::Core(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, GpuError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = GpuError::TooManyBandwidths { requested: 4096, max: 2048 };
        assert!(e.to_string().contains("4096"));
        let e: GpuError = kcv_core::Error::DegenerateDomain.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: GpuError = kcv_gpu_sim::SimError::InvalidLaunch("x".into()).into();
        assert!(e.to_string().contains("device error"));
    }
}
