//! The full GPU program, step for step as the paper's §IV describes it:
//! allocate, copy in, main kernel (fill → sort → sweep → residuals),
//! per-bandwidth summation reductions, minimum reduction, copy out.
//!
//! §IV-B's *index switch*: the squared residuals are produced "indexed as
//! k separate groups of n" (bandwidth-major) rather than the n-groups-of-k
//! order the sweep naturally emits, so that the per-bandwidth summation
//! reductions read consecutive addresses — coalesced on the device. The
//! pipeline models that layout by charging the residual writes and the
//! reduction reads at the coalesced rate; [`GpuConfig::obs_major_residuals`]
//! turns the optimisation *off* (everything charged at the scattered rate)
//! as a measurable ablation of the paper's design choice.

use crate::config::GpuConfig;
use crate::error::{GpuError, Result};
use crate::gpu_kernel_type::GpuKernel;
use crate::kernel::{main_kernel, MainWorkspace};
use kcv_core::error::validate_sample;
use kcv_core::grid::BandwidthGrid;
use kcv_gpu_sim::{
    launch_independent_map, min_payload_reduction, sum_reduction, sum_reduction_strided,
    ConstantMemory, LaunchConfig, LaunchReport, MemoryPool, ThreadCounters,
};
use std::time::Instant;

/// Cost and traffic accounting for one pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Sample size.
    pub n: usize,
    /// Grid size.
    pub k: usize,
    /// Peak device memory allocated (bytes).
    pub device_bytes_peak: usize,
    /// Host→device bytes transferred.
    pub h2d_bytes: u64,
    /// Device→host bytes transferred.
    pub d2h_bytes: u64,
    /// Simulated transfer time (bytes / device transfer bandwidth).
    pub transfer_seconds: f64,
    /// Main kernel launch report.
    pub main_kernel: LaunchReport,
    /// Aggregate operation counts over the `k` summation reductions and the
    /// final minimum reduction.
    pub reduction_totals: ThreadCounters,
    /// Simulated seconds spent in the reductions.
    pub reduction_seconds: f64,
    /// Total simulated device seconds (kernels + reductions + transfers).
    pub total_simulated_seconds: f64,
    /// Wall-clock seconds the simulation took on the host.
    pub host_seconds: f64,
}

/// Result of the GPU bandwidth selection.
#[derive(Debug, Clone)]
pub struct GpuRun {
    /// The selected (CV-minimal) bandwidth.
    pub bandwidth: f64,
    /// The cross-validation score at the optimum.
    pub score: f64,
    /// The f32 grid the device searched.
    pub bandwidths: Vec<f32>,
    /// The f32 CV score per grid bandwidth (`Σ residual² / n`).
    pub scores: Vec<f32>,
    /// Cost accounting.
    pub report: PipelineReport,
}

/// Runs the paper's GPU program on the simulated device: selects the
/// CV-optimal Epanechnikov bandwidth for `(x, y)` over `grid`.
pub fn select_bandwidth_gpu(
    x: &[f64],
    y: &[f64],
    grid: &BandwidthGrid,
    config: &GpuConfig,
) -> Result<GpuRun> {
    select_bandwidth_gpu_kernel(x, y, grid, config, &GpuKernel::epanechnikov())
}

/// [`select_bandwidth_gpu`] with an explicit device kernel — the paper's
/// "straightforward to add additional \[kernels\] in the future".
pub fn select_bandwidth_gpu_kernel(
    x: &[f64],
    y: &[f64],
    grid: &BandwidthGrid,
    config: &GpuConfig,
    kernel: &GpuKernel,
) -> Result<GpuRun> {
    kernel.validate()?;
    let n = validate_sample(x, y, 2)?;
    let k = grid.len();
    let max_k = config.spec.max_constant_f32();
    if k > max_k {
        return Err(GpuError::TooManyBandwidths { requested: k, max: max_k });
    }
    let wall_start = Instant::now();
    let coalesced_layout = !config.obs_major_residuals;
    // The reduction block must respect the device maximum wherever it is
    // used; clamp once so the summation and minimum reductions (and the
    // multi-device path, which mirrors this) cannot diverge.
    let reduction_threads = config.reduction_threads.min(config.spec.max_threads_per_block);

    // Host-side single-precision inputs (the paper's programs generate and
    // process f32 data).
    let x32: Vec<f32> = x.iter().map(|&v| v as f32).collect();
    let y32: Vec<f32> = y.iter().map(|&v| v as f32).collect();
    let h32: Vec<f32> = grid.values().iter().map(|&v| v as f32).collect();

    // §IV-A memory allocation: vectors, two n×n matrices, the n×k sum
    // matrices, the n×k squared-residual matrix, and the score array. Any
    // of these can exhaust the device.
    let pool = MemoryPool::for_device(&config.spec);
    let mut x_dev = pool.alloc::<f32>(n)?;
    let mut y_dev = pool.alloc::<f32>(n)?;
    let mut dist_mat = pool.alloc::<f32>(n * n)?;
    let mut y_mat = pool.alloc::<f32>(n * n)?;
    let mut num_mat = pool.alloc::<f32>(n * k)?;
    let mut den_mat = pool.alloc::<f32>(n * k)?;
    let mut sqres_mat = pool.alloc::<f32>(n * k)?;
    let mut scores_dev = pool.alloc::<f32>(k)?;

    // Copy the data in; bandwidths go to constant memory (8 KB cache limit).
    x_dev.copy_from_host(&x32)?;
    y_dev.copy_from_host(&y32)?;
    let bandwidths = ConstantMemory::new(&config.spec, &h32)?;

    // Main kernel: one thread per observation, over each thread's rows. The
    // squared residuals come back per thread and land in the device matrix
    // below in whatever physical layout the configuration charges for.
    let (sqres_rows, main_report) = {
        let x_view = x_dev.as_slice();
        let y_view = y_dev.as_slice();
        let bw_view = bandwidths.as_slice();
        let workspaces: Vec<MainWorkspace<'_>> = dist_mat
            .as_mut_slice()
            .chunks_mut(n)
            .zip(y_mat.as_mut_slice().chunks_mut(n))
            .zip(num_mat.as_mut_slice().chunks_mut(k))
            .zip(den_mat.as_mut_slice().chunks_mut(k))
            .map(|(((dist, yrow), num), den)| MainWorkspace { dist, yrow, num, den })
            .collect();
        let coeffs = kernel.coeffs.as_slice();
        let radius = kernel.radius;
        launch_independent_map(
            &config.spec,
            &config.cost,
            LaunchConfig::new(n, config.threads_per_block.min(config.spec.max_threads_per_block)),
            workspaces,
            |tid, ws, c| {
                main_kernel(tid, x_view, y_view, bw_view, coeffs, radius, coalesced_layout, ws, c)
            },
        )?
    };

    // Place each thread's residuals into the *pool-backed* residual matrix
    // in the physical layout whose stores the kernel charged: bandwidth-
    // major `[m·n + j]` under the §IV-B index switch (so the per-bandwidth
    // reductions read consecutive device addresses), observation-major
    // `[j·k + m]` in the ablation. No host-side shadow copy: the reductions
    // below read this device memory directly.
    {
        let sqres = sqres_mat.as_mut_slice();
        for (j, row) in sqres_rows.iter().enumerate() {
            for (m, &v) in row.iter().enumerate() {
                if coalesced_layout {
                    sqres[m * n + j] = v;
                } else {
                    sqres[j * k + m] = v;
                }
            }
        }
    }

    // k summation reductions (one per bandwidth), then the min reduction.
    let mut reduction_totals = ThreadCounters::default();
    let mut reduction_cycles = 0.0;
    {
        let sqres = sqres_mat.as_slice();
        let scores_out = scores_dev.as_mut_slice();
        for m in 0..k {
            let (sum, report) = if coalesced_layout {
                sum_reduction(
                    &config.spec,
                    &config.cost,
                    reduction_threads,
                    &sqres[m * n..(m + 1) * n],
                )?
            } else {
                // Obs-major: bandwidth m's residuals sit at stride k. The
                // strided reduction charges the scattered loads; the gather
                // here only adapts the access pattern for the simulator.
                let column: Vec<f32> = (0..n).map(|j| sqres[j * k + m]).collect();
                sum_reduction_strided(&config.spec, &config.cost, reduction_threads, &column)?
            };
            scores_out[m] = sum / n as f32;
            reduction_totals.absorb(&report.totals);
            reduction_cycles += report.simulated_cycles;
        }
    }
    let ((min_score, best_h), min_report) = min_payload_reduction(
        &config.spec,
        &config.cost,
        reduction_threads,
        scores_dev.as_slice(),
        bandwidths.as_slice(),
    )?;
    reduction_totals.absorb(&min_report.totals);
    reduction_cycles += min_report.simulated_cycles;

    // Copy the score profile back to the host.
    let mut scores_host = vec![0.0f32; k];
    scores_dev.copy_to_host(&mut scores_host)?;

    let transfer_seconds =
        (pool.h2d_bytes() + pool.d2h_bytes()) as f64 / config.spec.transfer_bytes_per_sec;
    let reduction_seconds = reduction_cycles / config.spec.clock_hz;
    let total_simulated_seconds =
        main_report.simulated_seconds + reduction_seconds + transfer_seconds;

    let report = PipelineReport {
        n,
        k,
        device_bytes_peak: pool.peak(),
        h2d_bytes: pool.h2d_bytes(),
        d2h_bytes: pool.d2h_bytes(),
        transfer_seconds,
        main_kernel: main_report,
        reduction_totals,
        reduction_seconds,
        total_simulated_seconds,
        host_seconds: wall_start.elapsed().as_secs_f64(),
    };

    Ok(GpuRun {
        bandwidth: best_h as f64,
        score: min_score as f64,
        bandwidths: h32,
        scores: scores_host,
        report,
    })
}

/// Device memory the pipeline needs for a given `(n, k)`, in bytes — useful
/// for predicting the paper's n ≈ 20 000 wall without running anything.
pub fn required_device_bytes(n: usize, k: usize) -> usize {
    let f = std::mem::size_of::<f32>();
    // x, y, two n×n, three n×k (num, den, sqres) + scores.
    (2 * n + 2 * n * n + 3 * n * k + k) * f
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_data(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let x: Vec<f64> = (0..n).map(|_| next()).collect();
        let y: Vec<f64> = x.iter().map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * next()).collect();
        (x, y)
    }

    #[test]
    fn gpu_profile_matches_f64_cpu_reference() {
        let (x, y) = paper_data(120, 1);
        let grid = BandwidthGrid::paper_default(&x, 25).unwrap();
        let run = select_bandwidth_gpu(&x, &y, &grid, &GpuConfig::default()).unwrap();
        let cpu = kcv_core::cv::cv_profile_sorted(&x, &y, &grid, &kcv_core::kernels::Epanechnikov)
            .unwrap();
        for m in 0..grid.len() {
            let gpu_s = run.scores[m] as f64;
            let cpu_s = cpu.scores[m];
            assert!(
                (gpu_s - cpu_s).abs() <= 1e-3 * cpu_s.abs().max(1e-6),
                "h={}: gpu {gpu_s} vs cpu {cpu_s}",
                grid.values()[m]
            );
        }
        // The selected bandwidth should agree (or sit one grid step away if
        // two near-equal minima flip under f32).
        let cpu_opt = cpu.argmin().unwrap().bandwidth;
        assert!(
            (run.bandwidth - cpu_opt).abs() <= grid.step() + 1e-9,
            "gpu {} vs cpu {cpu_opt}",
            run.bandwidth
        );
    }

    #[test]
    fn gpu_supports_every_polynomial_kernel() {
        use kcv_core::kernels::polynomial_kernels;
        let (x, y) = paper_data(90, 6);
        let grid = BandwidthGrid::paper_default(&x, 15).unwrap();
        for core_kernel in polynomial_kernels() {
            let device_kernel = GpuKernel::from_core(&*core_kernel);
            let run =
                select_bandwidth_gpu_kernel(&x, &y, &grid, &GpuConfig::default(), &device_kernel)
                    .unwrap();
            let cpu = kcv_core::cv::cv_profile_sorted(&x, &y, &grid, &*core_kernel).unwrap();
            for m in 0..grid.len() {
                let gpu_s = run.scores[m] as f64;
                let cpu_s = cpu.scores[m];
                assert!(
                    (gpu_s - cpu_s).abs() <= 2e-3 * cpu_s.abs().max(1e-6),
                    "{} h={}: gpu {gpu_s} vs cpu {cpu_s}",
                    core_kernel.name(),
                    grid.values()[m]
                );
            }
        }
    }

    #[test]
    fn invalid_device_kernels_rejected() {
        let (x, y) = paper_data(10, 7);
        let grid = BandwidthGrid::paper_default(&x, 5).unwrap();
        let bad = GpuKernel { name: "deg9", coeffs: vec![0.1; 10], radius: 1.0 };
        assert!(
            select_bandwidth_gpu_kernel(&x, &y, &grid, &GpuConfig::default(), &bad).is_err()
        );
    }

    #[test]
    fn constant_memory_limit_enforced_before_allocation() {
        let (x, y) = paper_data(10, 2);
        let grid = BandwidthGrid::linear(0.001, 1.0, 2049).unwrap();
        let err = select_bandwidth_gpu(&x, &y, &grid, &GpuConfig::default()).unwrap_err();
        assert_eq!(err, GpuError::TooManyBandwidths { requested: 2049, max: 2048 });
    }

    #[test]
    fn memory_wall_reproduces_papers_n_limit() {
        // The paper's program runs at n = 20 000 and fails beyond. With the
        // full allocation set (incl. the n×k matrices at k = 50) the
        // predicted requirement crosses 4 GB past 20 000.
        let four_gb = 4usize << 30;
        assert!(required_device_bytes(20_000, 50) < four_gb);
        assert!(required_device_bytes(25_000, 50) > four_gb);
        // And the pipeline actually refuses: use a *scaled-down* device so
        // the test does not allocate gigabytes of host RAM (1 MB device,
        // n = 400 needs 2·400²·4 B = 1.28 MB > 1 MB).
        let mut config = GpuConfig::default();
        config.spec.global_mem_bytes = 1 << 20;
        let (x, y) = paper_data(400, 3);
        let grid = BandwidthGrid::paper_default(&x, 10).unwrap();
        let err = select_bandwidth_gpu(&x, &y, &grid, &config).unwrap_err();
        assert!(matches!(err, GpuError::Sim(kcv_gpu_sim::SimError::OutOfMemory { .. })));
    }

    #[test]
    fn report_accounts_traffic_and_time() {
        let (x, y) = paper_data(80, 4);
        let grid = BandwidthGrid::paper_default(&x, 10).unwrap();
        let run = select_bandwidth_gpu(&x, &y, &grid, &GpuConfig::default()).unwrap();
        let r = &run.report;
        assert_eq!(r.n, 80);
        assert_eq!(r.k, 10);
        // Peak memory ≥ the two n×n matrices.
        assert!(r.device_bytes_peak >= 2 * 80 * 80 * 4);
        // H2D: x and y (80 f32 each).
        assert_eq!(r.h2d_bytes, 2 * 80 * 4);
        // D2H: the k scores.
        assert_eq!(r.d2h_bytes, 10 * 4);
        assert!(r.total_simulated_seconds > 0.0);
        assert!(r.main_kernel.totals.flops > 0);
        assert!(r.main_kernel.totals.global_coalesced > 0, "residual writes are coalesced");
        assert!(r.reduction_totals.syncs > 0);
    }

    #[test]
    fn residual_matrix_lives_in_the_pool_peak_is_exactly_the_formula() {
        // Regression: the bandwidth-major residual gather used to run
        // through a host `Vec` shadow of the residual matrix, bypassing the
        // memory pool — under-reporting `device_bytes_peak` and hiding an
        // uncharged device→host transfer. The residuals must live in the
        // pool-backed matrix, so the peak equals the §IV-A formula exactly
        // and the only transfers are x/y in and the k scores out.
        let (x, y) = paper_data(150, 11);
        let grid = BandwidthGrid::paper_default(&x, 20).unwrap();
        for config in [
            GpuConfig::default(),
            GpuConfig { obs_major_residuals: true, ..GpuConfig::default() },
        ] {
            let run = select_bandwidth_gpu(&x, &y, &grid, &config).unwrap();
            assert_eq!(run.report.device_bytes_peak, required_device_bytes(150, 20));
            assert_eq!(run.report.h2d_bytes, 2 * 150 * 4);
            assert_eq!(run.report.d2h_bytes, 20 * 4);
        }
    }

    #[test]
    fn oversized_reduction_threads_clamped_to_device_maximum() {
        // Regression: `reduction_threads` above the device block maximum
        // used to reach the summation reductions unclamped and error out.
        let (x, y) = paper_data(100, 13);
        let grid = BandwidthGrid::paper_default(&x, 10).unwrap();
        let default_run = select_bandwidth_gpu(&x, &y, &grid, &GpuConfig::default()).unwrap();
        let oversized =
            GpuConfig { reduction_threads: 1024, ..GpuConfig::default() };
        assert!(oversized.reduction_threads > oversized.spec.max_threads_per_block);
        let clamped_run = select_bandwidth_gpu(&x, &y, &grid, &oversized).unwrap();
        assert_eq!(clamped_run.bandwidth, default_run.bandwidth);
        assert_eq!(clamped_run.scores, default_run.scores);
    }

    #[test]
    fn obs_major_ablation_same_answer_higher_cost() {
        // Turning off the §IV-B index switch must not change any result,
        // only raise the simulated memory cost — the measurable value of
        // the paper's layout optimisation.
        let (x, y) = paper_data(300, 8);
        let grid = BandwidthGrid::paper_default(&x, 50).unwrap();
        let with_switch = select_bandwidth_gpu(&x, &y, &grid, &GpuConfig::default()).unwrap();
        let ablated_config =
            GpuConfig { obs_major_residuals: true, ..GpuConfig::default() };
        let without_switch = select_bandwidth_gpu(&x, &y, &grid, &ablated_config).unwrap();
        assert_eq!(with_switch.scores, without_switch.scores);
        assert_eq!(with_switch.bandwidth, without_switch.bandwidth);
        assert!(
            without_switch.report.total_simulated_seconds
                > with_switch.report.total_simulated_seconds,
            "strided layout should cost more: {} vs {}",
            without_switch.report.total_simulated_seconds,
            with_switch.report.total_simulated_seconds
        );
    }

    #[test]
    fn block_size_does_not_change_the_answer() {
        let (x, y) = paper_data(100, 5);
        let grid = BandwidthGrid::paper_default(&x, 20).unwrap();
        let a = select_bandwidth_gpu(&x, &y, &grid, &GpuConfig::default()).unwrap();
        let b = select_bandwidth_gpu(
            &x,
            &y,
            &grid,
            &GpuConfig::default().with_threads_per_block(64),
        )
        .unwrap();
        assert_eq!(a.bandwidth, b.bandwidth);
        assert_eq!(a.scores, b.scores);
        // But it can change the simulated schedule/time.
        assert_eq!(a.report.main_kernel.totals, b.report.main_kernel.totals);
    }

    #[test]
    fn degenerate_input_rejected() {
        let grid = BandwidthGrid::from_values(vec![0.5]).unwrap();
        assert!(select_bandwidth_gpu(&[1.0], &[1.0], &grid, &GpuConfig::default()).is_err());
    }
}
