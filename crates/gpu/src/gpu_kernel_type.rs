//! Kernel weighting functions available on the device.
//!
//! The paper's implementation "only uses one kernel weighting function"
//! (Epanechnikov) and notes that adding others "is straightforward …
//! in the future"; footnote 1 observes the same sorting strategy covers the
//! Uniform and Triangular kernels. This module is that future work: any
//! kernel that is polynomial in `|u|` on compact support runs on the
//! device, described by its f32 coefficient vector.

use kcv_core::kernels::PolynomialKernel;

/// Maximum polynomial degree the device kernel supports (triweight = 6).
pub const MAX_DEVICE_DEGREE: usize = 6;

/// A device-side kernel description: `K(u) = Σ_j coeffs[j]·|u|^j` for
/// `|u| ≤ radius`.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuKernel {
    /// Kernel name for reports.
    pub name: &'static str,
    /// Polynomial coefficients in `|u|`, single precision.
    pub coeffs: Vec<f32>,
    /// Support radius.
    pub radius: f32,
}

impl GpuKernel {
    /// The paper's kernel: `0.75(1 − u²)`.
    pub fn epanechnikov() -> Self {
        Self { name: "epanechnikov", coeffs: vec![0.75, 0.0, -0.75], radius: 1.0 }
    }

    /// The Uniform (box) kernel.
    pub fn uniform() -> Self {
        Self { name: "uniform", coeffs: vec![0.5], radius: 1.0 }
    }

    /// The Triangular kernel.
    pub fn triangular() -> Self {
        Self { name: "triangular", coeffs: vec![1.0, -1.0], radius: 1.0 }
    }

    /// The Quartic (biweight) kernel.
    pub fn quartic() -> Self {
        Self {
            name: "quartic",
            coeffs: vec![15.0 / 16.0, 0.0, -30.0 / 16.0, 0.0, 15.0 / 16.0],
            radius: 1.0,
        }
    }

    /// The Triweight kernel.
    pub fn triweight() -> Self {
        Self {
            name: "triweight",
            coeffs: vec![
                35.0 / 32.0,
                0.0,
                -105.0 / 32.0,
                0.0,
                105.0 / 32.0,
                0.0,
                -35.0 / 32.0,
            ],
            radius: 1.0,
        }
    }

    /// Builds a device kernel from any host-side [`PolynomialKernel`]
    /// (coefficients are narrowed to f32, like everything on this device).
    pub fn from_core<K: PolynomialKernel + ?Sized>(kernel: &K) -> Self {
        Self {
            name: kernel.name(),
            coeffs: kernel.coeffs().iter().map(|&c| c as f32).collect(),
            radius: kernel.radius() as f32,
        }
    }

    /// Polynomial degree.
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// Validates the description against the device limits.
    pub(crate) fn validate(&self) -> crate::error::Result<()> {
        if self.coeffs.is_empty() || self.degree() > MAX_DEVICE_DEGREE {
            return Err(crate::error::GpuError::Sim(
                kcv_gpu_sim::SimError::InvalidLaunch(format!(
                    "kernel '{}' has degree {} (device supports 0..={MAX_DEVICE_DEGREE})",
                    self.name,
                    self.degree()
                )),
            ));
        }
        if !(self.radius.is_finite() && self.radius > 0.0) {
            return Err(crate::error::GpuError::Sim(
                kcv_gpu_sim::SimError::InvalidLaunch(format!(
                    "kernel '{}' has invalid radius {}",
                    self.name, self.radius
                )),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcv_core::kernels::{Epanechnikov, Quartic, Triangular, Triweight, Uniform};

    #[test]
    fn presets_match_core_kernels() {
        assert_eq!(GpuKernel::epanechnikov(), GpuKernel::from_core(&Epanechnikov));
        assert_eq!(GpuKernel::uniform(), GpuKernel::from_core(&Uniform));
        assert_eq!(GpuKernel::triangular(), GpuKernel::from_core(&Triangular));
        assert_eq!(GpuKernel::quartic(), GpuKernel::from_core(&Quartic));
        assert_eq!(GpuKernel::triweight(), GpuKernel::from_core(&Triweight));
    }

    #[test]
    fn degrees_and_validation() {
        assert_eq!(GpuKernel::epanechnikov().degree(), 2);
        assert_eq!(GpuKernel::triweight().degree(), 6);
        assert!(GpuKernel::epanechnikov().validate().is_ok());
        let too_high = GpuKernel { name: "bad", coeffs: vec![0.0; 9], radius: 1.0 };
        assert!(too_high.validate().is_err());
        let bad_radius = GpuKernel { name: "bad", coeffs: vec![1.0], radius: 0.0 };
        assert!(bad_radius.validate().is_err());
        let empty = GpuKernel { name: "bad", coeffs: vec![], radius: 1.0 };
        assert!(empty.validate().is_err());
    }
}
