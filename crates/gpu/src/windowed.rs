//! The windowed GPU program — the prefix-moment strategy ported to the
//! device, breaking the paper's n ≈ 20 000 memory wall.
//!
//! The paper's program (see [`crate::select_bandwidth_gpu`]) materialises two `n×n` f32
//! matrices so that each thread can sort its own distance row; on the 4 GB
//! Tesla S10 that refuses past n ≈ 23 000 (§IV-A/§V). But the CPU-side
//! prefix-moment strategy (`kcv_core::cv::cv_profile_prefix`, PR 4) already
//! proved no per-observation state is needed: with the sample globally
//! argsorted, every windowed power sum expands binomially into differences
//! of **global** prefix-moment tables, and each `(observation, bandwidth)`
//! cell costs two binary searches plus an `O(deg²)` recombination.
//!
//! This module runs exactly that plan on the simulated device. The device
//! holds only
//!
//! * the sorted `x` and co-sorted `y` (`2n` f32),
//! * the two prefix-moment tables `P_m`/`Q_m` for `m = 0..=deg`
//!   (`2·(deg+1)·(n+1)` entries at 8 bytes each — see *Precision* below),
//! * `⌈n/tpb⌉·k` block-partial slots and the `k` scores,
//!
//! i.e. `O(n·(deg+2) + k)` bytes and **no n×n or n×k matrix anywhere** —
//! at the paper's k = 50 an n = 100 000 problem needs ~5.6 MB where the
//! classic layout would demand ~80 GB. One thread per observation answers
//! its `k` cells with [`kcv_gpu_sim::device_support_window`] bisections
//! (monotonically narrowing across the ascending bandwidth sweep) and the
//! binomial assembly; block-level shared-memory accumulation plus the
//! standard Harris reductions produce the score profile and the argmin on
//! device.
//!
//! ## Precision
//!
//! The paper's device is single-precision, but a naive f32 prefix table
//! would be useless at n = 100 000: `P_0[t]` reaches 10⁵, so a window
//! difference `P_0[b] − P_0[a]` of a few units would carry ~1e-2 relative
//! error — catastrophic cancellation. The tables are therefore built on the
//! **host in f64** with Neumaier compensation (over midrange-centred
//! coordinates, like the CPU strategy) and stored on the device as
//! **compensated f32 pairs** `(hi, lo)` with `hi + lo ≈ v` — the classic
//! double-f32 ("float-float") technique of the era. The device computes
//! window differences as `(hi_b − hi_a) + (lo_b − lo_a)`, whose error
//! scales with the *difference* magnitude (~1 ulp of f32), not the prefix
//! magnitude; the rest of the per-cell assembly runs in plain f32.
//! [`crate::GpuConfig::windowed_f64`] switches the tables to true f64
//! storage and f64 assembly — the same 8 bytes per entry, so the memory
//! footprint (and the perf gate on it) is identical.
//!
//! The pair scheme has a degree limit: the per-cell assembly multiplies the
//! `j`-th window moment by `h^{−j}`, amplifying its ~2⁻²⁴ residual error by
//! up to `h_min^{−deg}`. Through degree 4 (quartic) the amplified error
//! stays a few percent of the score at the paper-default grids; at degree
//! 5+ (e.g. triweight's degree 6, `h^{−6} ≈ 3·10⁷` at the smallest
//! bandwidths) it reaches O(1) and the profile is unreliable — use the f64
//! table mode for those kernels (`tests/windowed_agreement.rs` pins both
//! regimes).

use crate::config::GpuConfig;
use crate::error::{GpuError, Result};
use crate::gpu_kernel_type::{GpuKernel, MAX_DEVICE_DEGREE};
use kcv_core::error::validate_sample;
use kcv_core::grid::BandwidthGrid;
use kcv_core::sort::{apply_permutation, argsort};
use kcv_gpu_sim::{
    device_support_window, launch_independent_map, min_payload_reduction, sum_reduction,
    ConstantMemory, LaunchConfig, LaunchReport, MemoryPool, ThreadCounters,
};
use std::time::Instant;

/// Cost and traffic accounting for one windowed-pipeline run. Field-for-
/// field comparable with [`crate::PipelineReport`].
#[derive(Debug, Clone)]
pub struct WindowedReport {
    /// Sample size.
    pub n: usize,
    /// Grid size.
    pub k: usize,
    /// Device-kernel polynomial degree.
    pub deg: usize,
    /// Peak device memory allocated (bytes).
    pub device_bytes_peak: usize,
    /// Host→device bytes transferred.
    pub h2d_bytes: u64,
    /// Device→host bytes transferred.
    pub d2h_bytes: u64,
    /// Simulated transfer time (bytes / device transfer bandwidth).
    pub transfer_seconds: f64,
    /// Main (windowed) kernel launch report.
    pub main_kernel: LaunchReport,
    /// Aggregate operation counts over the `k` summation reductions and the
    /// final minimum reduction.
    pub reduction_totals: ThreadCounters,
    /// Simulated seconds spent in the reductions.
    pub reduction_seconds: f64,
    /// Total simulated device seconds (kernel + reductions + transfers).
    pub total_simulated_seconds: f64,
    /// Wall-clock seconds the simulation took on the host.
    pub host_seconds: f64,
}

/// Result of the windowed GPU bandwidth selection.
#[derive(Debug, Clone)]
pub struct WindowedRun {
    /// The selected (CV-minimal) bandwidth.
    pub bandwidth: f64,
    /// The cross-validation score at the optimum.
    pub score: f64,
    /// The f32 grid the device searched.
    pub bandwidths: Vec<f32>,
    /// The f32 CV score per grid bandwidth (`Σ residual² / n`).
    pub scores: Vec<f32>,
    /// Cost accounting.
    pub report: WindowedReport,
}

/// The host-built global tables the windowed device program uploads:
/// sorted/centred sample and f64 master prefix moments. Shared with the
/// multi-device sharded path.
pub(crate) struct WindowedTables {
    /// `x` sorted ascending, as f32 (the device's support predicate runs on
    /// these).
    pub xs32: Vec<f32>,
    /// `y` co-sorted, as f32.
    pub ys32: Vec<f32>,
    /// Midrange of the sorted sample (f64; the device uses it as f32 or f64
    /// per the precision mode).
    pub center: f64,
    /// `(deg+1) × (n+1)` Neumaier-compensated prefix sums of `xc^m`, f64
    /// master copy (stride `n+1`).
    pub px: Vec<f64>,
    /// Same layout, `y`-weighted.
    pub py: Vec<f64>,
    /// `(deg+1)²` Pascal triangle, `binom[j·(deg+1)+m] = C(j,m)`.
    pub binom: Vec<f64>,
}

impl WindowedTables {
    /// Argsorts `(x, y)` and builds the compensated f64 prefix-moment
    /// tables up to moment `deg`, mirroring the CPU strategy's build.
    pub(crate) fn build(x: &[f64], y: &[f64], deg: usize) -> Self {
        let perm = argsort(x);
        let xs = apply_permutation(x, &perm);
        let ys = apply_permutation(y, &perm);
        let n = xs.len();
        let center = 0.5 * (xs[0] + xs[n - 1]);

        let stride = n + 1;
        let mut px = vec![0.0f64; (deg + 1) * stride];
        let mut py = vec![0.0f64; (deg + 1) * stride];
        // Neumaier-compensated running sums, one (value, compensation) pair
        // per moment.
        let mut sx = vec![(0.0f64, 0.0f64); deg + 1];
        let mut sy = vec![(0.0f64, 0.0f64); deg + 1];
        fn neumaier_add(acc: &mut (f64, f64), v: f64) {
            let t = acc.0 + v;
            acc.1 += if acc.0.abs() >= v.abs() { (acc.0 - t) + v } else { (v - t) + acc.0 };
            acc.0 = t;
        }
        for t in 0..n {
            let v = xs[t] - center;
            let yv = ys[t];
            let mut pw = 1.0f64;
            for m in 0..=deg {
                neumaier_add(&mut sx[m], pw);
                neumaier_add(&mut sy[m], yv * pw);
                px[m * stride + t + 1] = sx[m].0 + sx[m].1;
                py[m * stride + t + 1] = sy[m].0 + sy[m].1;
                pw *= v;
            }
        }

        let bw = deg + 1;
        let mut binom = vec![0.0f64; bw * bw];
        for j in 0..=deg {
            binom[j * bw] = 1.0;
            for m in 1..=j {
                binom[j * bw + m] =
                    binom[(j - 1) * bw + m - 1] + if m < j { binom[(j - 1) * bw + m] } else { 0.0 };
            }
        }

        Self {
            xs32: xs.iter().map(|&v| v as f32).collect(),
            ys32: ys.iter().map(|&v| v as f32).collect(),
            center,
            px,
            py,
            binom,
        }
    }

    /// Splits an f64 master table into the device's compensated f32 pair
    /// representation: `hi = f32(v)`, `lo = f32(v − hi)`.
    pub(crate) fn split_pair(table: &[f64]) -> (Vec<f32>, Vec<f32>) {
        let mut hi = Vec::with_capacity(table.len());
        let mut lo = Vec::with_capacity(table.len());
        for &v in table {
            let h = v as f32;
            hi.push(h);
            lo.push((v - h as f64) as f32);
        }
        (hi, lo)
    }
}

/// Read-only device views of the uploaded prefix tables, in either
/// precision mode. Both represent each entry in 8 device bytes.
pub(crate) enum TableView<'a> {
    /// Compensated f32 pairs (default, period-authentic).
    PairF32 {
        /// High f32 words of `P_m`.
        px_hi: &'a [f32],
        /// Low (compensation) words of `P_m`.
        px_lo: &'a [f32],
        /// High words of `Q_m`.
        py_hi: &'a [f32],
        /// Low words of `Q_m`.
        py_lo: &'a [f32],
    },
    /// True f64 tables ([`GpuConfig::windowed_f64`]).
    F64 {
        /// `P_m` table.
        px: &'a [f64],
        /// `Q_m` table.
        py: &'a [f64],
    },
}

/// The windowed main kernel: one thread per observation (sorted position
/// `si`), answering all `k` of its cells.
///
/// Per bandwidth (ascending, monotonically narrowing bisection bounds):
/// resolve the support window, difference the prefix tables at its two
/// boundaries for every moment and both tables, binomially recombine into
/// the windowed power sums `S_j`/`SY_j` (self observation excluded by
/// splitting the window at `si`), assemble `N/D` exactly like every other
/// strategy, and accumulate the squared residual into the block's shared
/// partial row. Writes the thread's residuals into `resid` (its register
/// file in the model; the launch driver folds blocks into the device
/// partial buffer, whose coalesced flush is charged to each block leader).
#[allow(clippy::too_many_arguments)]
pub(crate) fn windowed_kernel(
    si: usize,
    xs: &[f32],
    ys: &[f32],
    view: &TableView<'_>,
    center: f64,
    binom: &[f64],
    bandwidths: &[f32],
    coeffs: &[f32],
    radius: f32,
    deg: usize,
    n: usize,
    resid: &mut [f32],
    c: &mut ThreadCounters,
) -> u64 {
    debug_assert!(deg <= MAX_DEVICE_DEGREE);
    let stride = n + 1;
    let bw = deg + 1;
    let xi = xs[si];
    let yi = ys[si];
    c.global_read(2);

    // Powers of −xc_i, in the working precision.
    let xci = match view {
        TableView::PairF32 { .. } => (xi - center as f32) as f64,
        TableView::F64 { .. } => xi as f64 - center,
    };
    let mut npow = [0.0f64; MAX_DEVICE_DEGREE + 1];
    npow[0] = 1.0;
    for m in 1..=deg {
        npow[m] = match view {
            TableView::PairF32 { .. } => (npow[m - 1] as f32 * -xci as f32) as f64,
            TableView::F64 { .. } => npow[m - 1] * -xci,
        };
    }
    c.flop(deg as u64);

    // Windowed moments of one side `[a, b)` by prefix differencing +
    // binomial recombination, in the view's precision. Charges the table
    // reads (divergent: neighbouring threads straddle different windows)
    // and the assembly flops.
    let side = |a: usize, b: usize, w: &mut [f64], wy: &mut [f64], c: &mut ThreadCounters| {
        let mut dp = [0.0f64; MAX_DEVICE_DEGREE + 1];
        let mut dq = [0.0f64; MAX_DEVICE_DEGREE + 1];
        for m in 0..=deg {
            match view {
                TableView::PairF32 { px_hi, px_lo, py_hi, py_lo } => {
                    // Difference of compensated pairs in f32: the error
                    // tracks the window magnitude, not the prefix magnitude.
                    dp[m] = ((px_hi[m * stride + b] - px_hi[m * stride + a])
                        + (px_lo[m * stride + b] - px_lo[m * stride + a]))
                        as f64;
                    dq[m] = ((py_hi[m * stride + b] - py_hi[m * stride + a])
                        + (py_lo[m * stride + b] - py_lo[m * stride + a]))
                        as f64;
                }
                TableView::F64 { px, py } => {
                    dp[m] = px[m * stride + b] - px[m * stride + a];
                    dq[m] = py[m * stride + b] - py[m * stride + a];
                }
            }
        }
        // 8 words per moment either way: 4 boundary entries × (hi + lo), or
        // 4 f64 entries at 2 words each.
        c.global_read(8 * (deg as u64 + 1));
        c.flop(6 * (deg as u64 + 1));
        for j in 0..=deg {
            let row = &binom[j * bw..j * bw + j + 1];
            let (mut s, mut sy) = (0.0f64, 0.0f64);
            for (m, &cf) in row.iter().enumerate() {
                match view {
                    TableView::PairF32 { .. } => {
                        let coeff = (cf as f32) * (npow[j - m] as f32);
                        s = (s as f32 + coeff * dp[m] as f32) as f64;
                        sy = (sy as f32 + coeff * dq[m] as f32) as f64;
                    }
                    TableView::F64 { .. } => {
                        let coeff = cf * npow[j - m];
                        s += coeff * dp[m];
                        sy += coeff * dq[m];
                    }
                }
            }
            w[j] = s;
            wy[j] = sy;
            c.flop(5 * (j as u64 + 1));
        }
    };

    let mut probes_total = 0u64;
    let (mut lo, mut hi) = (si, si + 1);
    let mut wl = [0.0f64; MAX_DEVICE_DEGREE + 1];
    let mut wyl = [0.0f64; MAX_DEVICE_DEGREE + 1];
    let mut wr = [0.0f64; MAX_DEVICE_DEGREE + 1];
    let mut wyr = [0.0f64; MAX_DEVICE_DEGREE + 1];
    for (m, &h) in bandwidths.iter().enumerate() {
        c.constant_read(1);
        let inv_h = 1.0 / h;
        c.flop(1);
        let probes;
        (lo, hi, probes) = device_support_window(xs, xi, inv_h, radius, lo, hi, c);
        probes_total += probes as u64;

        // Self-exclusion by construction: the window splits at si.
        side(lo, si, &mut wl, &mut wyl, c);
        side(si + 1, hi, &mut wr, &mut wyr, c);

        // d = x_i − x_l on the left, x_l − x_i on the right:
        // S_j = W_j^right + (−1)^j·W_j^left, then the standard
        // N/D = Σ_j c_j·h^{-j}·{SY_j, S_j} assembly.
        let (num, den) = match view {
            TableView::PairF32 { .. } => {
                let inv = inv_h;
                let (mut hp, mut num, mut den, mut sign) = (1.0f32, 0.0f32, 0.0f32, 1.0f32);
                for (j, &cf) in coeffs.iter().enumerate() {
                    let s_j = wr[j] as f32 + sign * wl[j] as f32;
                    let sy_j = wyr[j] as f32 + sign * wyl[j] as f32;
                    num += cf * hp * sy_j;
                    den += cf * hp * s_j;
                    hp *= inv;
                    sign = -sign;
                }
                (num, den)
            }
            TableView::F64 { .. } => {
                let inv = inv_h as f64;
                let (mut hp, mut num, mut den, mut sign) = (1.0f64, 0.0f64, 0.0f64, 1.0f64);
                for (j, &cf) in coeffs.iter().enumerate() {
                    let s_j = wr[j] + sign * wl[j];
                    let sy_j = wyr[j] + sign * wyl[j];
                    num += cf as f64 * hp * sy_j;
                    den += cf as f64 * hp * s_j;
                    hp *= inv;
                    sign = -sign;
                }
                (num as f32, den as f32)
            }
        };
        c.flop(7 * (deg as u64 + 1));
        c.branch(1);
        resid[m] = if den > 0.0 {
            let r = yi - num / den;
            c.flop(3);
            r * r
        } else {
            // M(X_i) = 0 at this h: the observation contributes nothing.
            0.0
        };
        // Accumulate into the block's shared partial row.
        c.shared_access(1);
    }
    c.sync();
    probes_total
}

/// Runs the windowed (O(n)-memory) GPU program on the simulated device:
/// selects the CV-optimal Epanechnikov bandwidth for `(x, y)` over `grid`.
pub fn select_bandwidth_gpu_windowed(
    x: &[f64],
    y: &[f64],
    grid: &BandwidthGrid,
    config: &GpuConfig,
) -> Result<WindowedRun> {
    select_bandwidth_gpu_windowed_kernel(x, y, grid, config, &GpuKernel::epanechnikov())
}

/// [`select_bandwidth_gpu_windowed`] with an explicit device kernel.
pub fn select_bandwidth_gpu_windowed_kernel(
    x: &[f64],
    y: &[f64],
    grid: &BandwidthGrid,
    config: &GpuConfig,
    kernel: &GpuKernel,
) -> Result<WindowedRun> {
    kernel.validate()?;
    let n = validate_sample(x, y, 2)?;
    let k = grid.len();
    let max_k = config.spec.max_constant_f32();
    if k > max_k {
        return Err(GpuError::TooManyBandwidths { requested: k, max: max_k });
    }
    let wall_start = Instant::now();
    let deg = kernel.degree();
    let tpb = config.threads_per_block.min(config.spec.max_threads_per_block);
    let reduction_threads = config.reduction_threads.min(config.spec.max_threads_per_block);
    let num_blocks = n.div_ceil(tpb);

    let tables = WindowedTables::build(x, y, deg);
    let h32: Vec<f32> = grid.values().iter().map(|&v| v as f32).collect();

    // Device allocation: vectors, the two prefix-moment tables (8 bytes per
    // entry in either precision mode), the block-partial matrix
    // (bandwidth-major so per-bandwidth reductions read consecutive
    // addresses), and the score array. No n×n, no n×k.
    let pool = MemoryPool::for_device(&config.spec);
    let mut xs_dev = pool.alloc::<f32>(n)?;
    let mut ys_dev = pool.alloc::<f32>(n)?;
    xs_dev.copy_from_host(&tables.xs32)?;
    ys_dev.copy_from_host(&tables.ys32)?;
    let stride = n + 1;
    let table_len = (deg + 1) * stride;

    // Both precision modes keep the tables in dedicated device buffers; the
    // pair mode splits each f64 master entry into (hi, lo) f32 words.
    enum TableBuffers {
        Pair {
            px_hi: kcv_gpu_sim::DeviceBuffer<f32>,
            px_lo: kcv_gpu_sim::DeviceBuffer<f32>,
            py_hi: kcv_gpu_sim::DeviceBuffer<f32>,
            py_lo: kcv_gpu_sim::DeviceBuffer<f32>,
        },
        F64 {
            px: kcv_gpu_sim::DeviceBuffer<f64>,
            py: kcv_gpu_sim::DeviceBuffer<f64>,
        },
    }
    let table_buffers = if config.windowed_f64 {
        let mut px = pool.alloc::<f64>(table_len)?;
        let mut py = pool.alloc::<f64>(table_len)?;
        px.copy_from_host(&tables.px)?;
        py.copy_from_host(&tables.py)?;
        TableBuffers::F64 { px, py }
    } else {
        let (hx, lx) = WindowedTables::split_pair(&tables.px);
        let (hy, ly) = WindowedTables::split_pair(&tables.py);
        let mut px_hi = pool.alloc::<f32>(table_len)?;
        let mut px_lo = pool.alloc::<f32>(table_len)?;
        let mut py_hi = pool.alloc::<f32>(table_len)?;
        let mut py_lo = pool.alloc::<f32>(table_len)?;
        px_hi.copy_from_host(&hx)?;
        px_lo.copy_from_host(&lx)?;
        py_hi.copy_from_host(&hy)?;
        py_lo.copy_from_host(&ly)?;
        TableBuffers::Pair { px_hi, px_lo, py_hi, py_lo }
    };
    let mut partials_dev = pool.alloc::<f32>(num_blocks * k)?;
    let mut scores_dev = pool.alloc::<f32>(k)?;
    let bandwidths = ConstantMemory::new(&config.spec, &h32)?;

    // Main kernel: one thread per observation; residual rows come back as
    // per-thread register values for the block accumulation below.
    let mut resid_scratch = vec![0.0f32; n * k];
    let main_report = {
        let xs_view = xs_dev.as_slice();
        let ys_view = ys_dev.as_slice();
        let view = match &table_buffers {
            TableBuffers::Pair { px_hi, px_lo, py_hi, py_lo } => TableView::PairF32 {
                px_hi: px_hi.as_slice(),
                px_lo: px_lo.as_slice(),
                py_hi: py_hi.as_slice(),
                py_lo: py_lo.as_slice(),
            },
            TableBuffers::F64 { px, py } => {
                TableView::F64 { px: px.as_slice(), py: py.as_slice() }
            }
        };
        let bw_view = bandwidths.as_slice();
        let workspaces: Vec<&mut [f32]> = resid_scratch.chunks_mut(k).collect();
        let coeffs = kernel.coeffs.as_slice();
        let radius = kernel.radius;
        let center = tables.center;
        let binom = tables.binom.as_slice();
        let (probes, report) = launch_independent_map(
            &config.spec,
            &config.cost,
            LaunchConfig::new(n, tpb),
            workspaces,
            |tid, resid, c| {
                let probes = windowed_kernel(
                    tid, xs_view, ys_view, &view, center, binom, bw_view, coeffs, radius, deg,
                    n, resid, c,
                );
                // Each block's leader flushes the block's accumulated
                // partial row to the device partial matrix — k consecutive
                // bandwidth-major slots per block, a coalesced store.
                if tid % tpb == 0 {
                    c.global_coalesced(k as u64);
                }
                probes
            },
        )?;
        kcv_obs::add(kcv_obs::Counter::WindowQueries, (n * k) as u64);
        kcv_obs::add(kcv_obs::Counter::BinarySearchProbes, probes.iter().sum());
        report
    };

    // Fold each block's thread rows into its bandwidth-major partial slot
    // (the shared-memory accumulation charged per-cell in the kernel).
    {
        let partials = partials_dev.as_mut_slice();
        for (b, block) in resid_scratch.chunks(tpb * k).enumerate() {
            for row in block.chunks(k) {
                for (m, &v) in row.iter().enumerate() {
                    partials[m * num_blocks + b] += v;
                }
            }
        }
    }

    // k summation reductions over the contiguous per-bandwidth partial
    // rows, then the min reduction — identical tail to the classic program.
    let mut reduction_totals = ThreadCounters::default();
    let mut reduction_cycles = 0.0;
    {
        let partials = partials_dev.as_slice();
        let scores_out = scores_dev.as_mut_slice();
        for m in 0..k {
            let row = &partials[m * num_blocks..(m + 1) * num_blocks];
            let (sum, report) =
                sum_reduction(&config.spec, &config.cost, reduction_threads, row)?;
            scores_out[m] = sum / n as f32;
            reduction_totals.absorb(&report.totals);
            reduction_cycles += report.simulated_cycles;
        }
    }
    let ((min_score, best_h), min_report) = min_payload_reduction(
        &config.spec,
        &config.cost,
        reduction_threads,
        scores_dev.as_slice(),
        bandwidths.as_slice(),
    )?;
    reduction_totals.absorb(&min_report.totals);
    reduction_cycles += min_report.simulated_cycles;

    let mut scores_host = vec![0.0f32; k];
    scores_dev.copy_to_host(&mut scores_host)?;

    let transfer_seconds =
        (pool.h2d_bytes() + pool.d2h_bytes()) as f64 / config.spec.transfer_bytes_per_sec;
    let reduction_seconds = reduction_cycles / config.spec.clock_hz;
    let total_simulated_seconds =
        main_report.simulated_seconds + reduction_seconds + transfer_seconds;

    let report = WindowedReport {
        n,
        k,
        deg,
        device_bytes_peak: pool.peak(),
        h2d_bytes: pool.h2d_bytes(),
        d2h_bytes: pool.d2h_bytes(),
        transfer_seconds,
        main_kernel: main_report,
        reduction_totals,
        reduction_seconds,
        total_simulated_seconds,
        host_seconds: wall_start.elapsed().as_secs_f64(),
    };

    Ok(WindowedRun {
        bandwidth: best_h as f64,
        score: min_score as f64,
        bandwidths: h32,
        scores: scores_host,
        report,
    })
}

/// Device memory the windowed pipeline needs for a given configuration, in
/// bytes: `2n` f32 for the sorted sample, `2·(deg+1)·(n+1)` table entries
/// at 8 bytes each (f32 pair or f64 — identical), the `⌈n/tpb⌉·k` block
/// partials, and the `k` scores. `O(n·(deg+2) + k)` — **no n² term**, so
/// the paper's 4 GB wall moves out past n = 10⁸.
pub fn required_device_bytes_windowed(
    n: usize,
    k: usize,
    deg: usize,
    threads_per_block: usize,
) -> usize {
    let f = std::mem::size_of::<f32>();
    let num_blocks = n.div_ceil(threads_per_block.max(1));
    2 * n * f + 2 * (deg + 1) * (n + 1) * 2 * f + num_blocks * k * f + k * f
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcv_core::cv::cv_profile_prefix;
    use kcv_core::kernels::Epanechnikov;

    fn paper_data(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let x: Vec<f64> = (0..n).map(|_| next()).collect();
        let y: Vec<f64> = x.iter().map(|&v| 0.5 * v + 10.0 * v * v + 0.5 * next()).collect();
        (x, y)
    }

    #[test]
    fn windowed_matches_prefix_cpu_reference() {
        let (x, y) = paper_data(300, 1);
        let grid = BandwidthGrid::paper_default(&x, 40).unwrap();
        let run = select_bandwidth_gpu_windowed(&x, &y, &grid, &GpuConfig::default()).unwrap();
        let cpu = cv_profile_prefix(&x, &y, &grid, &Epanechnikov).unwrap();
        for m in 0..grid.len() {
            let gpu_s = run.scores[m] as f64;
            let cpu_s = cpu.scores[m];
            assert!(
                (gpu_s - cpu_s).abs() <= 2e-3 * cpu_s.abs().max(1e-6),
                "h={}: gpu {gpu_s} vs cpu {cpu_s}",
                grid.values()[m]
            );
        }
        let cpu_opt = cpu.argmin().unwrap().bandwidth;
        assert!(
            (run.bandwidth - cpu_opt).abs() <= grid.step() + 1e-9,
            "gpu {} vs cpu {cpu_opt}",
            run.bandwidth
        );
    }

    #[test]
    fn windowed_matches_classic_pipeline_argmin() {
        let (x, y) = paper_data(257, 5);
        let grid = BandwidthGrid::paper_default(&x, 30).unwrap();
        let classic =
            crate::pipeline::select_bandwidth_gpu(&x, &y, &grid, &GpuConfig::default()).unwrap();
        let windowed =
            select_bandwidth_gpu_windowed(&x, &y, &grid, &GpuConfig::default()).unwrap();
        // Two f32 programs with different rounding histories: the argmin
        // must agree up to a near-tie flip one grid step away.
        assert!(
            (windowed.bandwidth - classic.bandwidth).abs() <= grid.step() + 1e-9,
            "windowed {} vs classic {}",
            windowed.bandwidth,
            classic.bandwidth
        );
    }

    #[test]
    fn f64_table_mode_same_bytes_tighter_scores() {
        let (x, y) = paper_data(400, 9);
        let grid = BandwidthGrid::paper_default(&x, 25).unwrap();
        let pair = select_bandwidth_gpu_windowed(&x, &y, &grid, &GpuConfig::default()).unwrap();
        let wide = select_bandwidth_gpu_windowed(
            &x,
            &y,
            &grid,
            &GpuConfig::default().with_windowed_f64(true),
        )
        .unwrap();
        assert_eq!(pair.report.device_bytes_peak, wide.report.device_bytes_peak);
        assert!(
            (pair.bandwidth - wide.bandwidth).abs() <= grid.step() + 1e-9,
            "pair {} vs f64 {}",
            pair.bandwidth,
            wide.bandwidth
        );
        // The f64 tables remove every accumulation error; what remains vs
        // the f64 CPU reference is the f32 quantisation of the inputs
        // themselves (x, y, h stored as f32 on the device), so ~1e-4
        // relative — far tighter than the classic pipeline's 1e-3 contract.
        let cpu = cv_profile_prefix(&x, &y, &grid, &Epanechnikov).unwrap();
        for m in 0..grid.len() {
            let err_wide = (wide.scores[m] as f64 - cpu.scores[m]).abs();
            assert!(
                err_wide <= 1e-4 * cpu.scores[m].abs().max(1e-9),
                "f64 mode h index {m}: {} vs {}",
                wide.scores[m],
                cpu.scores[m]
            );
        }
    }

    #[test]
    fn windowed_peak_memory_is_linear_in_n() {
        let (x, y) = paper_data(2_000, 3);
        let grid = BandwidthGrid::paper_default(&x, 50).unwrap();
        let run = select_bandwidth_gpu_windowed(&x, &y, &grid, &GpuConfig::default()).unwrap();
        let expected = required_device_bytes_windowed(2_000, 50, 2, 512);
        assert_eq!(run.report.device_bytes_peak, expected);
        // Far below both the classic requirement and any n² footprint.
        assert!(run.report.device_bytes_peak < 2_000 * 2_000);
        assert!(
            run.report.device_bytes_peak < crate::pipeline::required_device_bytes(2_000, 50) / 50
        );
    }

    #[test]
    fn windowed_runs_past_the_classic_wall_on_a_small_device() {
        // 1 MB device: the classic pipeline refuses at n = 400 (the two n²
        // matrices alone need 1.28 MB); the windowed one sails through at
        // n = 4 000 on the very same spec.
        let mut config = GpuConfig::default();
        config.spec.global_mem_bytes = 1 << 20;
        let (x, y) = paper_data(400, 3);
        let grid = BandwidthGrid::paper_default(&x, 10).unwrap();
        assert!(crate::pipeline::select_bandwidth_gpu(&x, &y, &grid, &config).is_err());
        let (x, y) = paper_data(4_000, 3);
        let grid = BandwidthGrid::paper_default(&x, 10).unwrap();
        let run = select_bandwidth_gpu_windowed(&x, &y, &grid, &config).unwrap();
        assert!(run.report.device_bytes_peak < 1 << 20);
        let cpu = cv_profile_prefix(&x, &y, &grid, &Epanechnikov).unwrap();
        let cpu_opt = cpu.argmin().unwrap().bandwidth;
        assert!(
            (run.bandwidth - cpu_opt).abs() <= grid.step() + 1e-9,
            "windowed {} vs cpu {cpu_opt}",
            run.bandwidth
        );
    }

    #[test]
    fn windowed_traffic_is_per_cell_logarithmic() {
        let (x, y) = paper_data(1_000, 7);
        let grid = BandwidthGrid::paper_default(&x, 20).unwrap();
        let run = select_bandwidth_gpu_windowed(&x, &y, &grid, &GpuConfig::default()).unwrap();
        let t = &run.report.main_kernel.totals;
        let cells = 1_000u64 * 20;
        // Per cell: ≤ 2·⌈log₂ n⌉ probes + 16(deg+1) table words; plus the
        // per-thread xi/yi reads. No O(window) term anywhere.
        let ceiling = cells * (2 * 10 + 16 * 3) + 2 * 1_000;
        assert!(
            t.global_reads <= ceiling,
            "global reads {} exceed per-cell ceiling {ceiling}",
            t.global_reads
        );
        // And the whole program touched global memory fewer times than the
        // classic pipeline's two n×n matrix fills alone (2n² stores).
        assert!(t.global_reads + t.global_writes + t.global_coalesced < 2 * 1_000 * 1_000);
    }

    #[test]
    fn windowed_rejects_oversized_grids_and_degenerate_input() {
        let (x, y) = paper_data(10, 2);
        let grid = BandwidthGrid::linear(0.001, 1.0, 2049).unwrap();
        let err = select_bandwidth_gpu_windowed(&x, &y, &grid, &GpuConfig::default()).unwrap_err();
        assert_eq!(err, GpuError::TooManyBandwidths { requested: 2049, max: 2048 });
        let grid = BandwidthGrid::from_values(vec![0.5]).unwrap();
        assert!(
            select_bandwidth_gpu_windowed(&[1.0], &[1.0], &grid, &GpuConfig::default()).is_err()
        );
    }

    #[test]
    fn report_accounts_windowed_traffic() {
        let (x, y) = paper_data(80, 4);
        let grid = BandwidthGrid::paper_default(&x, 10).unwrap();
        let run = select_bandwidth_gpu_windowed(&x, &y, &grid, &GpuConfig::default()).unwrap();
        let r = &run.report;
        assert_eq!((r.n, r.k, r.deg), (80, 10, 2));
        // H2D: xs, ys (n f32 each) + the four pair tables ((deg+1)·(n+1)
        // f32 each).
        let table_words = 3 * 81u64;
        assert_eq!(r.h2d_bytes, (2 * 80 + 4 * table_words as usize) as u64 * 4);
        // D2H: the k scores.
        assert_eq!(r.d2h_bytes, 10 * 4);
        assert!(r.transfer_seconds > 0.0);
        assert!(r.total_simulated_seconds > 0.0);
        assert!(r.main_kernel.totals.flops > 0);
        assert!(r.reduction_totals.syncs > 0);
    }
}
