//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! The build environment has no network access, so the real rayon cannot be
//! fetched. This crate implements the subset of the parallel-iterator API the
//! workspace uses (`into_par_iter`, `map`, `enumerate`, `filter`, `fold`,
//! `reduce`, `collect`, `min_by`) with genuine data parallelism on
//! `std::thread::scope`: items are chunked across
//! `std::thread::available_parallelism()` OS threads.
//!
//! Differences from upstream rayon, none of which this workspace relies on:
//!
//! * adapters are **eager** (each `map`/`fold` is a full parallel pass over a
//!   materialised `Vec`) instead of lazily fused work-stealing splits;
//! * `fold` produces one accumulator per worker chunk rather than one per
//!   steal, so `reduce` sees far fewer (but semantically identical) merges;
//! * there is no global thread pool — threads are scoped per call, which adds
//!   spawn overhead of a few microseconds per pass.
//!
//! Ordering guarantees match rayon: `collect` preserves item order, and
//! `enumerate` indexes items by their original position.

use std::cmp::Ordering;

pub mod prelude {
    //! Import everything needed for `into_par_iter()` chains.
    pub use crate::{IntoParallelIterator, ParIter};
}

/// Number of worker threads for a parallel pass.
fn worker_count(items: usize) -> usize {
    if items < 2 {
        return 1;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items)
}

/// Splits `items` into at most `workers` contiguous chunks, preserving order.
fn chunked<T>(items: Vec<T>, workers: usize) -> Vec<Vec<T>> {
    let len = items.len();
    if workers <= 1 || len < 2 {
        return vec![items];
    }
    let chunk = len.div_ceil(workers);
    let mut out = Vec::with_capacity(workers);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        out.push(c);
    }
    out
}

/// Runs `f` over every chunk on its own scoped thread and returns the
/// per-chunk results in chunk order, propagating worker panics.
fn run_chunks<T, R, F>(chunks: Vec<Vec<T>>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(Vec<T>) -> R + Sync,
{
    if chunks.len() == 1 {
        let mut chunks = chunks;
        return vec![f(chunks.pop().expect("one chunk"))];
    }
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || f(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// An eager parallel iterator over an owned collection of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Conversion into a [`ParIter`] (stand-in for rayon's trait of the same
/// name).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! range_par_iter {
    ($($ty:ty),+) => {$(
        impl IntoParallelIterator for std::ops::Range<$ty> {
            type Item = $ty;
            fn into_par_iter(self) -> ParIter<$ty> {
                ParIter { items: self.collect() }
            }
        }
    )+};
}
range_par_iter!(usize, u32, u64, i32, i64);

impl<T: Send> ParIter<T> {
    /// Pairs each item with its index (parallel `enumerate`).
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter { items: self.items.into_iter().enumerate().collect() }
    }

    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync + Send,
    {
        let workers = worker_count(self.items.len());
        let chunks = chunked(self.items, workers);
        let mapped = run_chunks(chunks, |chunk| {
            chunk.into_iter().map(&f).collect::<Vec<R>>()
        });
        ParIter { items: mapped.into_iter().flatten().collect() }
    }

    /// Keeps the items satisfying `pred`.
    pub fn filter<F>(self, pred: F) -> ParIter<T>
    where
        F: Fn(&T) -> bool + Sync + Send,
    {
        ParIter { items: self.items.into_iter().filter(|t| pred(t)).collect() }
    }

    /// Parallel fold: each worker folds its chunk from a fresh `identity()`
    /// accumulator; the resulting per-worker accumulators form a new
    /// [`ParIter`], exactly like rayon's `fold` (with one accumulator per
    /// worker chunk instead of one per work-stealing split).
    pub fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> ParIter<A>
    where
        A: Send,
        ID: Fn() -> A + Sync + Send,
        F: Fn(A, T) -> A + Sync + Send,
    {
        let workers = worker_count(self.items.len());
        let chunks = chunked(self.items, workers);
        let accs = run_chunks(chunks, |chunk| {
            chunk.into_iter().fold(identity(), &fold_op)
        });
        ParIter { items: accs }
    }

    /// [`fold`](Self::fold) with a per-chunk setup hook: each worker calls
    /// `setup()` once before folding its chunk and holds the returned guard
    /// for the chunk's whole lifetime (dropped after the last item).
    ///
    /// This is the per-chunk hook ROADMAP asks for: the kernelcv parallel CV
    /// strategies use it to enter a `kcv_obs` scope once per chunk instead
    /// of paying two thread-local operations plus an `Arc` clone per
    /// observation. The guard type `G` needs no `Send` bound — it is created
    /// and dropped on the worker thread that owns the chunk (RAII guards
    /// like `kcv_obs::ScopeGuard` are deliberately `!Send`).
    ///
    /// Counter attribution is unchanged vs the per-item pattern: anything
    /// recorded during `fold_op` lands in the scope the guard entered, so a
    /// strategy's counters are identical whichever variant it uses.
    pub fn fold_with_setup<A, G, S, ID, F>(
        self,
        setup: S,
        identity: ID,
        fold_op: F,
    ) -> ParIter<A>
    where
        A: Send,
        S: Fn() -> G + Sync + Send,
        ID: Fn() -> A + Sync + Send,
        F: Fn(A, T) -> A + Sync + Send,
    {
        let workers = worker_count(self.items.len());
        let chunks = chunked(self.items, workers);
        let accs = run_chunks(chunks, |chunk| {
            let _guard = setup();
            chunk.into_iter().fold(identity(), &fold_op)
        });
        ParIter { items: accs }
    }

    /// Merges all items into one value starting from `identity()`.
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> T
    where
        ID: Fn() -> T + Sync + Send,
        F: Fn(T, T) -> T + Sync + Send,
    {
        self.items.into_iter().fold(identity(), op)
    }

    /// Collects the items in order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Returns the minimum item under `cmp`, or `None` if empty. Ties
    /// resolve to the **last** minimal item, matching rayon/std `min_by`.
    pub fn min_by<F>(self, cmp: F) -> Option<T>
    where
        F: Fn(&T, &T) -> Ordering + Sync + Send,
    {
        self.items.into_iter().min_by(cmp)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_indexes_by_position() {
        let out: Vec<(usize, char)> =
            vec!['a', 'b', 'c'].into_par_iter().enumerate().collect();
        assert_eq!(out, vec![(0, 'a'), (1, 'b'), (2, 'c')]);
    }

    #[test]
    fn fold_reduce_sums_like_sequential() {
        let total = (0..10_000usize)
            .into_par_iter()
            .fold(|| 0usize, |acc, i| acc + i)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 10_000 * 9_999 / 2);
    }

    #[test]
    fn fold_with_setup_runs_setup_once_per_chunk_and_matches_fold() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let setups = AtomicUsize::new(0);
        let items = AtomicUsize::new(0);
        struct Guard;
        let total = (0..10_000usize)
            .into_par_iter()
            .fold_with_setup(
                || {
                    setups.fetch_add(1, Ordering::Relaxed);
                    Guard
                },
                || 0usize,
                |acc, i| {
                    items.fetch_add(1, Ordering::Relaxed);
                    acc + i
                },
            )
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 10_000 * 9_999 / 2);
        assert_eq!(items.load(Ordering::Relaxed), 10_000);
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let setup_calls = setups.load(Ordering::Relaxed);
        assert!(
            setup_calls <= cores.min(10_000),
            "setup ran {setup_calls} times for {cores} workers — not once per chunk"
        );
    }

    #[test]
    fn map_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        (0..10_000usize).into_par_iter().map(|i| {
            seen.lock().unwrap().insert(std::thread::current().id());
            i
        }).collect::<Vec<_>>();
        let threads = seen.lock().unwrap().len();
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        assert!(threads >= cores.min(2), "only {threads} thread(s) used");
    }

    #[test]
    fn filter_and_min_by_work() {
        let min = vec![5.0f64, 1.0, 3.0]
            .into_par_iter()
            .filter(|&v| v > 1.5)
            .min_by(|a, b| a.total_cmp(b));
        assert_eq!(min, Some(3.0));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        (0..100usize).into_par_iter().map(|i| {
            if i == 57 {
                panic!("boom");
            }
            i
        }).collect::<Vec<_>>();
    }
}
