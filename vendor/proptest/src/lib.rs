//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access, so the real proptest cannot
//! be fetched. This crate implements the subset the workspace uses:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * range strategies for the primitive integer and float types,
//! * tuple strategies, [`collection::vec`], and [`Strategy::prop_map`].
//!
//! Semantics versus upstream: cases are generated from a **deterministic**
//! per-test seed (a hash of the test's module path and name), so runs are
//! reproducible without persistence files; there is **no shrinking** — a
//! failing case reports the case number and message and panics immediately.
//! Files under `proptest-regressions/` are ignored.

use std::fmt;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; tests here are numeric and somewhat
        // expensive, so use a smaller but still meaningful default.
        Self { cases: 64 }
    }
}

/// Error carried by a failed `prop_assert!` out of a test case body.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed-assertion error with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

pub mod test_runner {
    //! Deterministic case generation.

    /// SplitMix64 generator used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test identifier (FNV-1a hash), so each
        /// test gets its own reproducible stream.
        pub fn for_test(test_id: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_id.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self { state: h }
        }

        /// Next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        #[inline]
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;

    /// A recipe for generating random values (no shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<R, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> R,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, R> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> R,
    {
        type Value = R;
        fn sample(&self, rng: &mut TestRng) -> R {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % width;
                    (self.start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            self.start + rng.next_unit_f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `elem` and a length drawn
    /// uniformly from `size` (half-open, like upstream's size ranges).
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub use strategy::Strategy;

pub mod prelude {
    //! Everything a property-test module needs.
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, TestCaseError};
}

/// Declares property tests. Each `#[test] fn name(pat in strategy, ...)`
/// becomes a plain `#[test]` running [`ProptestConfig::cases`] sampled cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $( #[$meta:meta] )*
        fn $name:ident ( $( $pat:pat_param in $strat:expr ),+ $(,)? ) $body:block
      )+
    ) => {
        $(
            $( #[$meta] )*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategies = ( $( $strat, )+ );
                let mut rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    let ( $( $pat, )+ ) =
                        $crate::strategy::Strategy::sample(&strategies, &mut rng);
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!("property failed at case {}/{}: {}", case + 1, config.cases, err);
                    }
                }
            }
        )+
    };
}

/// Asserts inside a `proptest!` body, failing the case (not panicking
/// directly) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(a in 3usize..17, b in -2.0f64..9.5) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-2.0..9.5).contains(&b), "b out of range: {b}");
        }

        #[test]
        fn tuples_and_vecs_compose(
            pairs in crate::collection::vec((0u64..100, -1.0f32..1.0), 0..20)
        ) {
            prop_assert!(pairs.len() < 20);
            for (k, v) in pairs {
                prop_assert!(k < 100);
                prop_assert!((-1.0..1.0).contains(&v));
            }
        }

        #[test]
        fn prop_map_transforms((x, y) in (0u32..10, 0u32..10).prop_map(|(a, b)| (a + 1, b + 1))) {
            prop_assert!(x >= 1 && x <= 10);
            prop_assert_eq!(y >= 1, true);
        }
    }

    #[test]
    fn same_test_id_gives_same_stream() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("x::z");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
