//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so the real criterion cannot
//! be fetched. This crate keeps the workspace's `[[bench]]` targets
//! compiling and *running*: `b.iter(...)` times the closure over
//! `sample_size` samples and prints a one-line summary (median, min, max)
//! per benchmark. There is no statistical analysis, no outlier detection,
//! and no HTML report — use the `kcv-bench` binaries and
//! `results/BENCH_report.json` for trend-quality numbers.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 10 }
    }

    /// Runs a single standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), 10, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark identified by `id` in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Runs a benchmark with an input value (the input is simply passed
    /// through to the closure).
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op for the stub).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter value.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name` with a parameter shown as `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self(format!("{}/{}", name.into(), param))
    }
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` once per sample, keeping its output alive via
    /// [`black_box`] so the optimiser cannot delete the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up.
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher { samples: Vec::new(), sample_size };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let mut s = bencher.samples;
    s.sort_by(|a, b| a.total_cmp(b));
    let median = s[s.len() / 2];
    println!(
        "{label:<48} median {} (min {}, max {}, {} samples)",
        fmt_time(median),
        fmt_time(s[0]),
        fmt_time(s[s.len() - 1]),
        s.len()
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("f", 1), &1, |b, _| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn time_formatting_covers_magnitudes() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
