//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no network access and no
//! pre-populated cargo registry, so the real `rand` cannot be fetched. This
//! crate re-implements exactly the API surface the workspace uses:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`]
//! * [`Rng::random`] for the primitive types the workspace draws
//! * [`seq::index::sample`] / [`seq::SliceRandom::choose_multiple`] —
//!   seeded without-replacement subsampling via a sparse partial
//!   Fisher–Yates shuffle (the bagged CV selector's subsample draw)
//!
//! The generator is SplitMix64 (the same family `kcv_core::util::SplitMix64`
//! uses), so draws are deterministic and of good statistical quality, but the
//! *streams differ from upstream `rand`*: code seeded with the same value
//! will see different numbers than it would with the real crate. Every use in
//! this workspace only relies on determinism and uniformity, not on specific
//! upstream streams.

/// Low-level 64-bit generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from an [`RngCore`] (stand-in for
/// sampling with `StandardUniform`).
pub trait StandardDraw {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardDraw for f64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardDraw for f32 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardDraw for u64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardDraw for u32 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardDraw for usize {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardDraw for bool {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level generator interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value; for floats the range is [0, 1).
    #[inline]
    fn random<T: StandardDraw>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `[low, high)`.
    #[inline]
    fn random_range(&mut self, range: core::ops::Range<f64>) -> f64 {
        range.start + self.random::<f64>() * (range.end - range.start)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related sampling (subset of `rand::seq`).

    use super::RngCore;

    /// Draws one integer uniformly from `[0, bound)` by rejection sampling,
    /// so every residue is exactly equally likely (no modulo bias).
    fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: usize) -> usize {
        debug_assert!(bound > 0, "uniform_below requires a positive bound");
        let bound = bound as u64;
        // 2^64 mod bound values at the top of the u64 range would map
        // unevenly under `% bound`; reject and redraw them. At most one
        // redraw is expected for any bound.
        let rem = (u64::MAX % bound + 1) % bound;
        let limit = u64::MAX - rem;
        loop {
            let v = rng.next_u64();
            if v <= limit {
                return (v % bound) as usize;
            }
        }
    }

    pub mod index {
        //! Index sampling (subset of `rand::seq::index`).

        use super::super::RngCore;
        use std::collections::HashMap;

        /// Samples `amount` distinct indices from `0..length` uniformly
        /// **without replacement**, in selection order.
        ///
        /// This is a *partial Fisher–Yates shuffle over a virtual identity
        /// array*: step `i` swaps virtual slots `i` and `j ∈ [i, length)`
        /// and emits the value landing in slot `i`. Only touched slots are
        /// stored (a hash map), so memory is `O(amount)` regardless of
        /// `length` — drawing 2,000 indices out of 10,000,000 costs the
        /// same as out of 10,000. With `amount == length` the result is a
        /// uniform permutation of `0..length`.
        ///
        /// Determinism: the output is a pure function of the generator
        /// state, so equal seeds give equal index sets (the property the
        /// workspace's bagged selector relies on).
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(
            rng: &mut R,
            length: usize,
            amount: usize,
        ) -> Vec<usize> {
            assert!(
                amount <= length,
                "cannot sample {amount} indices without replacement from 0..{length}"
            );
            let mut swaps: HashMap<usize, usize> = HashMap::with_capacity(amount.min(length));
            let mut out = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = i + super::uniform_below(rng, length - i);
                let at_j = swaps.get(&j).copied().unwrap_or(j);
                let at_i = swaps.get(&i).copied().unwrap_or(i);
                out.push(at_j);
                // Slot j now holds what slot i held; slot i is never
                // revisited, so its new value needs no record.
                swaps.insert(j, at_i);
            }
            out
        }
    }

    /// Without-replacement sampling from slices (subset of
    /// `rand::seq::SliceRandom` / `IndexedRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Chooses `amount` distinct elements uniformly without
        /// replacement, in selection order. Upstream returns a lazy
        /// iterator; this stub materialises the references, which is all
        /// the workspace needs.
        ///
        /// # Panics
        ///
        /// Panics if `amount > self.len()`.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> Vec<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose_multiple<R: RngCore + ?Sized>(&self, rng: &mut R, amount: usize) -> Vec<&T> {
            index::sample(rng, self.len(), amount)
                .into_iter()
                .map(|i| &self[i])
                .collect()
        }
    }
}

pub mod rngs {
    //! Concrete generators (subset of `rand::rngs`).
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Unlike upstream `StdRng` (ChaCha12) this is not cryptographically
    /// secure, but it is deterministic, fast, and passes standard uniformity
    /// tests — all the workspace's data-generating processes need.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        #[inline]
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{seq, Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn floats_stay_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            let w: f32 = rng.random();
            assert!((0.0..1.0).contains(&w));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn index_sample_is_deterministic_per_seed() {
        let a = seq::index::sample(&mut StdRng::seed_from_u64(99), 1_000_000, 50);
        let b = seq::index::sample(&mut StdRng::seed_from_u64(99), 1_000_000, 50);
        let c = seq::index::sample(&mut StdRng::seed_from_u64(100), 1_000_000, 50);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn index_sample_is_without_replacement_and_in_range() {
        use std::collections::HashSet;
        let mut rng = StdRng::seed_from_u64(5);
        for &(length, amount) in &[(10usize, 10usize), (100, 7), (1_000_000, 500)] {
            let picked = seq::index::sample(&mut rng, length, amount);
            assert_eq!(picked.len(), amount);
            assert!(picked.iter().all(|&i| i < length));
            let distinct: HashSet<usize> = picked.iter().copied().collect();
            assert_eq!(distinct.len(), amount, "duplicate index in {picked:?}");
        }
    }

    #[test]
    fn index_sample_of_everything_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut all = seq::index::sample(&mut rng, 64, 64);
        all.sort_unstable();
        assert_eq!(all, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn index_sample_is_roughly_uniform() {
        // Each of 10 indices should appear in a 3-of-10 draw with
        // probability 3/10; over 20,000 draws that is 6,000 ± noise.
        let mut rng = StdRng::seed_from_u64(21);
        let mut counts = [0u32; 10];
        for _ in 0..20_000 {
            for i in seq::index::sample(&mut rng, 10, 3) {
                counts[i] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((5_400..=6_600).contains(&c), "index {i} drawn {c} times");
        }
    }

    #[test]
    fn choose_multiple_gathers_the_sampled_elements() {
        use seq::SliceRandom;
        let values: Vec<f64> = (0..100).map(|i| i as f64 * 0.5).collect();
        let picked = values.choose_multiple(&mut StdRng::seed_from_u64(3), 10);
        let indices = seq::index::sample(&mut StdRng::seed_from_u64(3), 100, 10);
        assert_eq!(picked.len(), 10);
        for (v, i) in picked.iter().zip(indices) {
            assert_eq!(**v, values[i]);
        }
    }
}
