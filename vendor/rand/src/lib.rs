//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no network access and no
//! pre-populated cargo registry, so the real `rand` cannot be fetched. This
//! crate re-implements exactly the API surface the workspace uses:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`]
//! * [`Rng::random`] for the primitive types the workspace draws
//!
//! The generator is SplitMix64 (the same family `kcv_core::util::SplitMix64`
//! uses), so draws are deterministic and of good statistical quality, but the
//! *streams differ from upstream `rand`*: code seeded with the same value
//! will see different numbers than it would with the real crate. Every use in
//! this workspace only relies on determinism and uniformity, not on specific
//! upstream streams.

/// Low-level 64-bit generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from an [`RngCore`] (stand-in for
/// sampling with `StandardUniform`).
pub trait StandardDraw {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardDraw for f64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardDraw for f32 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardDraw for u64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardDraw for u32 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardDraw for usize {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardDraw for bool {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level generator interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value; for floats the range is [0, 1).
    #[inline]
    fn random<T: StandardDraw>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `[low, high)`.
    #[inline]
    fn random_range(&mut self, range: core::ops::Range<f64>) -> f64 {
        range.start + self.random::<f64>() * (range.end - range.start)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators (subset of `rand::rngs`).
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Unlike upstream `StdRng` (ChaCha12) this is not cryptographically
    /// secure, but it is deterministic, fast, and passes standard uniformity
    /// tests — all the workspace's data-generating processes need.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        #[inline]
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn floats_stay_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            let w: f32 = rng.random();
            assert!((0.0..1.0).contains(&w));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
